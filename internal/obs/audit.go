package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qrdtm/internal/proto"
)

// The streaming auditor turns CheckTrace from a post-hoc test oracle into an
// always-on invariant monitor: a background goroutine incrementally drains
// the registry's span buffer (a cursor over Seen(), never a full copy),
// groups spans by trace, and runs the protocol checker over every trace that
// has quiesced — root span recorded and no new spans for a settle window.
// Violations become counters an operator can alarm on via /metrics and
// /healthz instead of discovering them in a failed test run days later.
//
// Window semantics: each Poll audits the batch of traces that quiesced since
// the last one, so the cross-trace invariants (read consistency, version
// monotonicity) are checked within that sliding window. A window sees a
// subset of the full run's spans, and every ordering constraint over a
// subset also holds over the full set, so windowed checking can miss a
// cross-window violation but never fabricates one — zero false positives.
//
// Completeness is explicit, not assumed: if the ring overwrites spans faster
// than the auditor drains them, the lost count is surfaced as GapSpans
// ("audit incomplete") rather than silently auditing a hole, and traces
// whose parents were lost are counted Incomplete, mirroring CheckTrace's
// offline discipline.

// AuditorConfig tunes the streaming auditor. The zero value gets defaults.
type AuditorConfig struct {
	// Interval is the poll cadence (default 100ms).
	Interval time.Duration
	// Settle is how long a trace must stay quiet after its root span landed
	// before it is audited (default 500ms) — long enough for a replica's
	// serve spans to be merged in deployments that feed one buffer, short
	// enough that a violation surfaces within a second.
	Settle time.Duration
	// MaxPending caps the number of unquiesced traces held; beyond it the
	// entire backlog is audited immediately (default 4096).
	MaxPending int
}

// AuditStats is the auditor's externally visible state.
type AuditStats struct {
	Spans      uint64 `json:"spans"`      // spans drained from the buffer
	Traces     uint64 `json:"traces"`     // complete traces audited
	Incomplete uint64 `json:"incomplete"` // traces skipped (dangling parents)
	Violations uint64 `json:"violations"` // invariant violations found
	// GapSpans counts spans lost to ring overwrites before the auditor could
	// read them; nonzero means the audit has holes ("audit incomplete").
	GapSpans      uint64 `json:"gap_spans"`
	LastViolation string `json:"last_violation,omitempty"`
}

// pendingTrace accumulates one trace's spans until it quiesces.
type pendingTrace struct {
	spans    []proto.Span
	ids      map[uint64]struct{}
	last     time.Time // when the trace last grew (auditor's clock)
	rootDone bool
}

// Auditor is the always-on streaming trace auditor. Create with NewAuditor,
// Start it, and Stop it at shutdown (Stop flushes and audits everything
// still pending, so end-of-run stats are complete).
type Auditor struct {
	reg        *Registry
	interval   time.Duration
	settle     time.Duration
	maxPending int

	// Poll state, owned by the audit goroutine (or the caller of Poll when
	// the auditor was never started — tests drive Poll directly).
	cursor  uint64
	pending map[uint64]*pendingTrace

	spans      atomic.Uint64
	traces     atomic.Uint64
	incomplete atomic.Uint64
	violations atomic.Uint64
	gaps       atomic.Uint64

	vmu           sync.Mutex
	lastViolation string

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
}

// NewAuditor builds an auditor over the registry's span buffer and registers
// its counters as gauges on the same registry, so audit state rides every
// /metrics scrape (JSON and Prometheus) without extra wiring. Returns nil
// when the registry has no span buffer — nothing to audit.
func NewAuditor(reg *Registry, cfg AuditorConfig) *Auditor {
	if reg.Spans() == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 500 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	a := &Auditor{
		reg:        reg,
		interval:   cfg.Interval,
		settle:     cfg.Settle,
		maxPending: cfg.MaxPending,
		pending:    make(map[uint64]*pendingTrace),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	reg.RegisterGauge("audit_spans", func() int64 { return int64(a.spans.Load()) })
	reg.RegisterGauge("audit_traces", func() int64 { return int64(a.traces.Load()) })
	reg.RegisterGauge("audit_incomplete", func() int64 { return int64(a.incomplete.Load()) })
	reg.RegisterGauge("audit_violations", func() int64 { return int64(a.violations.Load()) })
	reg.RegisterGauge("audit_gap_spans", func() int64 { return int64(a.gaps.Load()) })
	return a
}

// Start launches the background polling goroutine. Safe to call once; nil
// auditors no-op.
func (a *Auditor) Start() {
	if a == nil {
		return
	}
	a.startOnce.Do(func() {
		go func() {
			defer close(a.doneCh)
			t := time.NewTicker(a.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					a.Poll(false)
				case <-a.stopCh:
					return
				}
			}
		}()
	})
}

// Stop halts the background goroutine and runs one final flushing poll that
// audits every pending trace regardless of settle, so shutdown-time Stats
// reflect the whole run. Safe to call more than once; nil auditors no-op.
func (a *Auditor) Stop() {
	if a == nil {
		return
	}
	a.stopOnce.Do(func() {
		close(a.stopCh)
		a.startOnce.Do(func() { close(a.doneCh) }) // never started: unblock the wait
		<-a.doneCh
		a.Poll(true)
	})
}

// Poll runs one audit increment: drain new spans, then audit every quiesced
// trace (all pending traces when flush is set). Exposed so tests and
// non-goroutine deployments can drive the auditor deterministically; callers
// must not race Poll with a started auditor's own goroutine.
func (a *Auditor) Poll(flush bool) {
	if a == nil {
		return
	}
	spans, next, dropped := a.reg.Spans().SpansSince(a.cursor)
	a.cursor = next
	if dropped > 0 {
		a.gaps.Add(dropped)
	}
	now := time.Now()
	for i := range spans {
		s := &spans[i]
		pt := a.pending[s.Trace]
		if pt == nil {
			pt = &pendingTrace{ids: make(map[uint64]struct{}, 8)}
			a.pending[s.Trace] = pt
		}
		if _, dup := pt.ids[s.ID]; dup {
			continue
		}
		pt.ids[s.ID] = struct{}{}
		pt.spans = append(pt.spans, *s)
		pt.last = now
		if s.Kind == proto.SpanRoot {
			pt.rootDone = true
		}
	}
	a.spans.Add(uint64(len(spans)))

	if len(a.pending) > a.maxPending {
		flush = true // backlog cap: audit everything rather than grow unbounded
	}
	var batch []proto.Span
	for trace, pt := range a.pending {
		if flush || (pt.rootDone && now.Sub(pt.last) >= a.settle) {
			batch = append(batch, pt.spans...)
			delete(a.pending, trace)
		}
	}
	if len(batch) == 0 {
		return
	}
	res := CheckTrace(batch)
	a.traces.Add(uint64(res.Traces))
	a.incomplete.Add(uint64(res.Incomplete))
	if n := len(res.Violations); n > 0 {
		a.violations.Add(uint64(n))
		a.vmu.Lock()
		a.lastViolation = res.Violations[0].String()
		a.vmu.Unlock()
	}
}

// Stats returns the auditor's counters. Safe concurrently with a running
// auditor; nil auditors return zeros.
func (a *Auditor) Stats() AuditStats {
	if a == nil {
		return AuditStats{}
	}
	a.vmu.Lock()
	last := a.lastViolation
	a.vmu.Unlock()
	return AuditStats{
		Spans:         a.spans.Load(),
		Traces:        a.traces.Load(),
		Incomplete:    a.incomplete.Load(),
		Violations:    a.violations.Load(),
		GapSpans:      a.gaps.Load(),
		LastViolation: last,
	}
}

// String renders a one-line summary for logs and health output.
func (s AuditStats) String() string {
	return fmt.Sprintf("audited %d traces (%d spans, %d incomplete): %d violations, %d gap spans",
		s.Traces, s.Spans, s.Incomplete, s.Violations, s.GapSpans)
}
