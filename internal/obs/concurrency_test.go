package obs

import (
	"sync"
	"testing"
	"time"

	"qrdtm/internal/proto"
)

// These tests exist to run under -race: the introspection plane reads every
// counter (histograms, heat, gauges, span ring) while the hot path is still
// writing them, so snapshot-while-observe must be data-race free.

func TestHistogramSnapshotWhileObserve(t *testing.T) {
	h := NewHistogram()
	var wg, started sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		started.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h.Record(seed) // guarantee at least one sample before snapshots race in
			started.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(v % 1_000_000)
					v += 7919
				}
			}
		}(int64(w + 1))
	}
	started.Wait()
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count > 0 && s.Sum == 0 && s.Max == 0 {
			t.Errorf("snapshot %d: count %d with zero sum and max", i, s.Count)
		}
		_ = s.Stats()
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count == 0 {
		t.Fatal("no samples recorded")
	}
}

func TestRegistrySnapshotUnderLoad(t *testing.T) {
	reg := NewRegistry().WithSpans(NewSpanBuffer(256))
	reg.RegisterGauge("load", func() int64 { return 1 })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := proto.ObjectID(rune('a' + w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := reg.Start()
				reg.Observe(SiteQueueDepth, int64(i%64))
				reg.ObserveSince(SiteQueueWait, t0)
				reg.HeatRead(obj)
				reg.HeatWrite(obj)
				if i%5 == 0 {
					reg.HeatConflict(obj)
					reg.HeatAbort(obj)
					reg.Abort(CauseLockDenied)
				}
				reg.Spans().Add(proto.Span{Trace: uint64(w + 1), ID: uint64(i + 1)})
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := reg.Snapshot()
		if s.Gauges["load"] != 1 {
			t.Errorf("gauge lost under load: %v", s.Gauges)
		}
		if s.Heat != nil {
			_ = s.Heat.TopSlots(5)
			_ = s.Heat.Skew()
		}
		if s.SpanStats != nil && s.SpanStats.Seen < s.SpanStats.Dropped {
			t.Errorf("span stats inverted: %+v", s.SpanStats)
		}
		_, _, _ = reg.Spans().SpansSince(0)
	}
	close(stop)
	wg.Wait()
	final := reg.Snapshot()
	if final.Heat == nil {
		t.Fatal("no heat recorded")
	}
	if final.Sites[SiteQueueDepth.String()].Count == 0 {
		t.Fatal("no queue-depth samples recorded")
	}
}
