package obs

import (
	"testing"
	"time"

	"qrdtm/internal/proto"
)

// auditFixture loads spans into a fresh traced registry and returns it with
// its auditor (driven by Poll directly — no goroutine — for determinism).
func auditFixture(t *testing.T, ringSize int, spans []proto.Span) (*Registry, *Auditor) {
	t.Helper()
	reg := NewRegistry().WithSpans(NewSpanBuffer(ringSize))
	a := NewAuditor(reg, AuditorConfig{})
	if a == nil {
		t.Fatal("NewAuditor returned nil for a traced registry")
	}
	for _, s := range spans {
		reg.Spans().Add(s)
	}
	return reg, a
}

func TestAuditorRequiresSpanBuffer(t *testing.T) {
	if a := NewAuditor(NewRegistry(), AuditorConfig{}); a != nil {
		t.Fatal("NewAuditor accepted a registry without a span buffer")
	}
	// Nil auditors no-op everywhere (the qr-node -audit flag composes with
	// tracing off).
	var a *Auditor
	a.Start()
	a.Poll(true)
	a.Stop()
	if s := a.Stats(); s != (AuditStats{}) {
		t.Fatalf("nil auditor stats = %+v", s)
	}
}

func TestAuditorCleanRun(t *testing.T) {
	_, a := auditFixture(t, 4096, validTimeline())
	a.Poll(true)
	s := a.Stats()
	if s.Violations != 0 {
		t.Fatalf("clean timeline produced violations: %+v (last: %s)", s, s.LastViolation)
	}
	if s.Traces != 2 {
		t.Fatalf("audited %d traces, want 2", s.Traces)
	}
	if s.GapSpans != 0 {
		t.Fatalf("gap spans = %d on an unwrapped ring", s.GapSpans)
	}
	if s.Spans != uint64(len(validTimeline())) {
		t.Fatalf("drained %d spans, want %d", s.Spans, len(validTimeline()))
	}
}

func TestAuditorCatchesViolation(t *testing.T) {
	// Same corruption as TestCheckTraceCatchesStaleRead: T2's read reports a
	// version T1's completed commit already superseded.
	reg, a := auditFixture(t, 4096, corrupt(t, 13, func(s *proto.Span) { s.Version = 1 }))
	a.Poll(true)
	s := a.Stats()
	if s.Violations == 0 {
		t.Fatal("auditor missed a stale-read violation CheckTrace catches")
	}
	if s.LastViolation == "" {
		t.Fatal("violation recorded but LastViolation empty")
	}
	// The violation counter rides the registry as a gauge, so any /metrics
	// scrape (JSON or Prometheus) carries the verdict.
	if g := reg.Snapshot().Gauges; g["audit_violations"] == 0 {
		t.Fatalf("audit_violations gauge not exported: %v", g)
	}
}

func TestAuditorCountsRingGaps(t *testing.T) {
	spans := make([]proto.Span, 20)
	for i := range spans {
		spans[i] = proto.Span{Trace: uint64(i + 1), ID: uint64(i + 1), Kind: proto.SpanRoot, OK: false}
	}
	_, a := auditFixture(t, 8, spans)
	a.Poll(true)
	if s := a.Stats(); s.GapSpans != 12 {
		t.Fatalf("gap spans = %d, want 12 (20 spans through an 8-slot ring)", s.GapSpans)
	}
}

func TestAuditorIncrementalQuiescence(t *testing.T) {
	reg := NewRegistry().WithSpans(NewSpanBuffer(4096))
	a := NewAuditor(reg, AuditorConfig{Settle: time.Millisecond})
	timeline := validTimeline()
	// Drain everything but the roots: no trace quiesces (rootDone false).
	for _, s := range timeline {
		if s.Kind != proto.SpanRoot {
			reg.Spans().Add(s)
		}
	}
	a.Poll(false)
	if s := a.Stats(); s.Traces != 0 {
		t.Fatalf("audited %d traces before any root landed", s.Traces)
	}
	// Roots land; after the settle window a plain poll audits both traces.
	for _, s := range timeline {
		if s.Kind == proto.SpanRoot {
			reg.Spans().Add(s)
		}
	}
	a.Poll(false) // drains the roots, starts their settle clocks
	time.Sleep(5 * time.Millisecond)
	a.Poll(false)
	s := a.Stats()
	if s.Traces != 2 || s.Violations != 0 {
		t.Fatalf("after settle: %+v, want 2 clean traces", s)
	}
}

func TestAuditorStopFlushes(t *testing.T) {
	reg := NewRegistry().WithSpans(NewSpanBuffer(4096))
	// An interval far beyond the test's lifetime: only Stop's flush can audit.
	a := NewAuditor(reg, AuditorConfig{Interval: time.Hour})
	a.Start()
	for _, s := range validTimeline() {
		reg.Spans().Add(s)
	}
	a.Stop()
	if s := a.Stats(); s.Traces != 2 {
		t.Fatalf("Stop did not flush pending traces: %+v", s)
	}
	a.Stop() // idempotent
}

func TestSpansSince(t *testing.T) {
	b := NewSpanBuffer(8)
	add := func(n int) {
		for i := 0; i < n; i++ {
			b.Add(proto.Span{Trace: 1, ID: b.Seen() + 1})
		}
	}
	add(3)
	spans, cur, dropped := b.SpansSince(0)
	if len(spans) != 3 || cur != 3 || dropped != 0 {
		t.Fatalf("first drain: %d spans, cursor %d, dropped %d", len(spans), cur, dropped)
	}
	// Nothing new: same cursor back, no spans.
	if spans, cur2, _ := b.SpansSince(cur); len(spans) != 0 || cur2 != cur {
		t.Fatalf("idle drain moved the cursor: %d spans, cursor %d", len(spans), cur2)
	}
	// Overrun: 10 more spans through the 8-slot ring laps the reader by 5.
	add(10)
	spans, cur, dropped = b.SpansSince(cur)
	if dropped != 2 || len(spans) != 8 || cur != 13 {
		t.Fatalf("overrun drain: %d spans, cursor %d, dropped %d (want 8/13/2)", len(spans), cur, dropped)
	}
	if b.Dropped() != 5 {
		t.Fatalf("Dropped() = %d, want 5 (13 seen - 8 cap)", b.Dropped())
	}
	// Nil-safety.
	var nilBuf *SpanBuffer
	if spans, cur, dropped := nilBuf.SpansSince(0); spans != nil || cur != 0 || dropped != 0 {
		t.Fatal("nil buffer SpansSince not a no-op")
	}
	if nilBuf.Cap() != 0 || nilBuf.Dropped() != 0 {
		t.Fatal("nil buffer Cap/Dropped not zero")
	}
}
