package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// fzReader derives structured message fields deterministically from fuzz
// input bytes; past the end it yields zeros, so every input is valid.
type fzReader struct {
	d []byte
	i int
}

func (z *fzReader) byte() byte {
	if z.i >= len(z.d) {
		return 0
	}
	b := z.d[z.i]
	z.i++
	return b
}

func (z *fzReader) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(z.byte())
	}
	return v
}

func (z *fzReader) str() string {
	n := int(z.byte() % 9)
	b := make([]byte, n)
	for k := range b {
		b[k] = z.byte()
	}
	return string(b)
}

// fuzzBatchReadReq builds a BatchReadReq from fuzz bytes.
func fuzzBatchReadReq(z *fzReader) BatchReadReq {
	req := BatchReadReq{
		Txn:   TxnID(z.u64()),
		Write: z.byte()&1 == 1,
		Depth: int(int8(z.byte())),
		Rqv:   z.byte()&1 == 1,
		From:  int(z.byte()),
		TC:    TraceContext{Trace: z.u64(), Span: z.u64(), Parent: z.u64()},
	}
	for n := int(z.byte() % 6); n > 0; n-- {
		req.Objs = append(req.Objs, ObjectID(z.str()))
	}
	for n := int(z.byte() % 6); n > 0; n-- {
		req.Delta = append(req.Delta, DataItem{
			ID:         ObjectID(z.str()),
			Version:    Version(z.u64()),
			OwnerDepth: int(int8(z.byte())),
			OwnerChk:   int(int8(z.byte())),
		})
	}
	return req
}

// fuzzBatchReadRep builds a BatchReadRep from fuzz bytes. Copies carry a mix
// of nil and registered interface payloads, the two shapes replicas ship.
func fuzzBatchReadRep(z *fzReader) BatchReadRep {
	rep := BatchReadRep{
		OK:         z.byte()&1 == 1,
		AbortDepth: int(int8(z.byte())),
		AbortChk:   int(int8(z.byte())),
		LockOnly:   z.byte()&1 == 1,
		NeedFull:   z.byte()&1 == 1,
	}
	for n := int(z.byte() % 6); n > 0; n-- {
		c := ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64())}
		switch z.byte() % 4 {
		case 0: // nil Val: version-0 "never written" copies travel like this
		case 1:
			c.Val = Int64(int64(z.u64()))
		case 2:
			c.Val = String(z.str())
		case 3:
			c.Val = Int64Slice{int64(z.u64()), int64(z.u64())}
		}
		rep.Copies = append(rep.Copies, c)
	}
	return rep
}

// normalizeBatchReq maps gob's nil/empty-slice ambiguity away before
// comparing: gob omits zero-length slices entirely, so they decode as nil.
func normalizeBatchReq(r BatchReadReq) BatchReadReq {
	if len(r.Objs) == 0 {
		r.Objs = nil
	}
	if len(r.Delta) == 0 {
		r.Delta = nil
	}
	return r
}

func normalizeBatchRep(r BatchReadRep) BatchReadRep {
	if len(r.Copies) == 0 {
		r.Copies = nil
	}
	return r
}

// FuzzBatchReadWire exercises the new batched-read wire messages two ways:
// arbitrary bytes fed to the gob decoder must fail cleanly (never panic),
// and structured messages derived from the same bytes must survive a gob
// round trip unchanged — the exact property the TCP transport depends on.
// WireSize must stay positive for everything that round-trips, since the
// in-memory transport's byte accounting divides by commit counts downstream.
func FuzzBatchReadWire(f *testing.F) {
	for _, seed := range fuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Robustness: the decoder sees attacker-shaped bytes; errors are
		// expected, panics are bugs. Decode both directly and through the
		// interface path the TCP frame reader uses.
		var req BatchReadReq
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&req)
		var rep BatchReadRep
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&rep)
		var iface any
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&iface)

		// Round trip: derived request and reply come back bit-identical
		// (modulo gob's nil/empty slice normalization).
		z := &fzReader{d: data}
		in := fuzzBatchReadReq(z)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			t.Fatalf("encode BatchReadReq: %v", err)
		}
		var out BatchReadReq
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode BatchReadReq: %v", err)
		}
		if a, b := normalizeBatchReq(in), normalizeBatchReq(out); !reflect.DeepEqual(a, b) {
			t.Fatalf("BatchReadReq round trip:\n in: %+v\nout: %+v", a, b)
		}
		if sz := WireSize(in); sz <= 0 {
			t.Fatalf("WireSize(BatchReadReq) = %d", sz)
		}

		repIn := fuzzBatchReadRep(z)
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(repIn); err != nil {
			t.Fatalf("encode BatchReadRep: %v", err)
		}
		var repOut BatchReadRep
		if err := gob.NewDecoder(&buf).Decode(&repOut); err != nil {
			t.Fatalf("decode BatchReadRep: %v", err)
		}
		if a, b := normalizeBatchRep(repIn), normalizeBatchRep(repOut); !reflect.DeepEqual(a, b) {
			t.Fatalf("BatchReadRep round trip:\n in: %+v\nout: %+v", a, b)
		}
		if sz := WireSize(repIn); sz <= 0 {
			t.Fatalf("WireSize(BatchReadRep) = %d", sz)
		}
	})
}

// fuzzSeedInputs returns the in-code seed corpus: real gob encodings of
// representative messages (so the raw-decode path starts from valid frames)
// plus byte patterns that drive the structured derivation through its
// branches. TestWriteFuzzCorpus mirrors these into testdata/fuzz.
func fuzzSeedInputs() [][]byte {
	enc := func(msg any) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	return [][]byte{
		{},
		[]byte("qrdtm"),
		enc(BatchReadReq{
			Txn: 7, Objs: []ObjectID{"bucket3/k1", "bucket3/k2"}, Depth: 1,
			Rqv: true, From: 2,
			Delta: []DataItem{{ID: "x", Version: 4, OwnerDepth: 1, OwnerChk: NoChk}},
			TC:    TraceContext{Trace: 1, Span: 2, Parent: 3},
		}),
		enc(BatchReadRep{
			OK: true, AbortDepth: NoDepth, AbortChk: NoChk,
			Copies: []ObjectCopy{
				{ID: "x", Version: 4, Val: Int64(42)},
				{ID: "fresh"}, // version-0, nil-value copy for an unknown id
			},
		}),
		enc(BatchReadRep{NeedFull: true, AbortDepth: NoDepth, AbortChk: NoChk}),
		enc(BatchReadRep{AbortDepth: 2, AbortChk: 1, LockOnly: true}),
		bytes.Repeat([]byte{0xff, 0x00, 0x7f}, 40),
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzBatchReadWire from fuzzSeedInputs. It only runs when
// WRITE_FUZZ_CORPUS is set:
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/proto/
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBatchReadWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
