package proto

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestObjectCopyCloneIsDeep(t *testing.T) {
	orig := ObjectCopy{ID: "x", Version: 3, Val: Int64Slice{1, 2, 3}}
	cl := orig.Clone()
	cl.Val.(Int64Slice)[0] = 99
	if orig.Val.(Int64Slice)[0] != 1 {
		t.Fatal("Clone aliased the slice")
	}
	nilVal := ObjectCopy{ID: "y"}
	if got := nilVal.Clone(); got.Val != nil {
		t.Fatalf("clone of nil value = %v", got.Val)
	}
}

func TestScalarValuesCloneThemselves(t *testing.T) {
	for _, v := range []Value{Int64(4), Float64(2.5), String("s"), Bool(true)} {
		if got := v.CloneValue(); got != v {
			t.Fatalf("scalar clone changed value: %v -> %v", v, got)
		}
	}
}

func TestSliceValuesCloneDeep(t *testing.T) {
	b := Bytes{1, 2}
	bc := b.CloneValue().(Bytes)
	bc[0] = 9
	if b[0] != 1 {
		t.Fatal("Bytes clone aliased")
	}
	ids := IDSlice{"a", "b"}
	ic := ids.CloneValue().(IDSlice)
	ic[0] = "z"
	if ids[0] != "a" {
		t.Fatal("IDSlice clone aliased")
	}
	is := Int64Slice{5}
	isc := is.CloneValue().(Int64Slice)
	isc[0] = 7
	if is[0] != 5 {
		t.Fatal("Int64Slice clone aliased")
	}
}

func gobRoundTrip(t *testing.T, in any, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestMessagesGobRoundTrip(t *testing.T) {
	req := ReadReq{
		Txn: 7, Obj: "o1", Write: true, Depth: 2,
		DataSet: []DataItem{{ID: "a", Version: 4, OwnerDepth: 1, OwnerChk: 3}},
	}
	var gotReq ReadReq
	gobRoundTrip(t, req, &gotReq)
	if gotReq.Txn != 7 || gotReq.DataSet[0].OwnerChk != 3 || !gotReq.Write {
		t.Fatalf("ReadReq round trip: %+v", gotReq)
	}

	rep := ReadRep{OK: true, Copy: ObjectCopy{ID: "a", Version: 9, Val: Int64(42)}, AbortDepth: NoDepth, AbortChk: NoChk}
	var gotRep ReadRep
	gobRoundTrip(t, rep, &gotRep)
	if gotRep.Copy.Val.(Int64) != 42 || gotRep.AbortChk != NoChk {
		t.Fatalf("ReadRep round trip: %+v", gotRep)
	}

	prep := PrepareReq{Txn: 3, Writes: []ObjectCopy{{ID: "w", Version: 1, Val: String("v")}}}
	var gotPrep PrepareReq
	gobRoundTrip(t, prep, &gotPrep)
	if gotPrep.Writes[0].Val.(String) != "v" {
		t.Fatalf("PrepareReq round trip: %+v", gotPrep)
	}
}

func TestValuePayloadsGobRoundTripAsInterface(t *testing.T) {
	// Values travel inside interface fields over TCP; registration must
	// cover every built-in payload.
	for _, v := range []Value{
		Int64(1), Float64(2), String("x"), Bool(true),
		Bytes{1}, Int64Slice{2}, IDSlice{"id"},
	} {
		in := ObjectCopy{ID: "o", Version: 1, Val: v}
		var out ObjectCopy
		gobRoundTrip(t, in, &out)
		if out.Val == nil {
			t.Fatalf("%T: lost value", v)
		}
	}
}

func TestStringers(t *testing.T) {
	if NodeID(3).String() != "n3" {
		t.Fatal("NodeID stringer")
	}
	if TxnID(9).String() != "t9" {
		t.Fatal("TxnID stringer")
	}
	if ObjectID("abc").String() != "abc" {
		t.Fatal("ObjectID stringer")
	}
}

func TestDataItemGobProperty(t *testing.T) {
	prop := func(id string, v uint64, depth, chk int16) bool {
		in := DataItem{ID: ObjectID(id), Version: Version(v), OwnerDepth: int(depth), OwnerChk: int(chk)}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			return false
		}
		var out DataItem
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
