package proto

// This file provides ready-made Value implementations for common payloads.
// Benchmarks and examples define richer structs; these cover the scalar and
// slice cases so that simple uses of the DTM need no boilerplate.

// Int64 is a scalar integer payload (account balances, counters).
type Int64 int64

// CloneValue implements Value. Scalars are immutable, so the receiver is its
// own deep copy.
func (v Int64) CloneValue() Value { return v }

// Float64 is a scalar floating-point payload.
type Float64 float64

// CloneValue implements Value.
func (v Float64) CloneValue() Value { return v }

// String is a scalar string payload.
type String string

// CloneValue implements Value.
func (v String) CloneValue() Value { return v }

// Bool is a scalar boolean payload.
type Bool bool

// CloneValue implements Value.
func (v Bool) CloneValue() Value { return v }

// Bytes is a raw byte-slice payload.
type Bytes []byte

// CloneValue implements Value by copying the backing array.
func (v Bytes) CloneValue() Value {
	out := make(Bytes, len(v))
	copy(out, v)
	return out
}

// Int64Slice is an integer-slice payload (sorted bucket contents etc.).
type Int64Slice []int64

// CloneValue implements Value by copying the backing array.
func (v Int64Slice) CloneValue() Value {
	out := make(Int64Slice, len(v))
	copy(out, v)
	return out
}

// IDSlice is a payload holding references to other objects (linked
// structures such as skiplist forward pointers).
type IDSlice []ObjectID

// CloneValue implements Value by copying the backing array.
func (v IDSlice) CloneValue() Value {
	out := make(IDSlice, len(v))
	copy(out, v)
	return out
}

func init() {
	RegisterValue(Int64(0))
	RegisterValue(Float64(0))
	RegisterValue(String(""))
	RegisterValue(Bool(false))
	RegisterValue(Bytes(nil))
	RegisterValue(Int64Slice(nil))
	RegisterValue(IDSlice(nil))
}
