package proto

// This file is the hand-rolled binary wire codec for the hot protocol
// messages. The TCP transport's pipelined framing (internal/cluster) carries
// message bodies either in this encoding or — for message types the codec
// does not know — as a self-contained gob blob; AppendWire returning false is
// the signal to fall back. Compared to gob the codec writes no type
// descriptors, no field names and no per-connection stream state, so a
// PrepareReq that gob spends ~400 bytes on fits in a few dozen, and one
// encoding can be fanned out to every quorum member byte-identically.
//
// Layout conventions (see DESIGN.md §11 for the enclosing frame):
//
//   - one leading type-tag byte (wireTag* below) selects the message;
//   - unsigned scalars are uvarints, signed scalars (nesting depths,
//     checkpoint epochs, which use -1 sentinels) are zigzag varints;
//   - strings and byte slices are length-prefixed (uvarint);
//   - slices are count-prefixed (uvarint); a zero count decodes as nil,
//     matching gob's empty-slice omission so the two codecs are
//     observationally equivalent (the fuzz target pins this);
//   - booleans are one byte (0/1);
//   - Value payloads carry a one-byte kind for the stock implementations in
//     values.go and fall back to an embedded gob blob for application-defined
//     types registered via RegisterValue.
//
// Decoding is fuzz-hardened: every length is bounds-checked against the
// remaining input before allocation, and malformed input yields an error,
// never a panic or an oversized allocation.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
)

// Message type tags. The zero value is reserved so a truncated buffer never
// aliases a valid message.
const (
	wireTagInvalid byte = iota
	wireTagReadReq
	wireTagReadRep
	wireTagBatchReadReq
	wireTagBatchReadRep
	wireTagPrepareReq
	wireTagPrepareRep
	wireTagDecideReq
	wireTagDecideRep
	wireTagReleaseReq
	wireTagReleaseRep
	wireTagLoadReq
	wireTagLoadRep
	wireTagDumpReq
	wireTagDumpRep
)

// Value payload kinds (see values.go for the stock implementations).
const (
	wireValNil byte = iota
	wireValInt64
	wireValFloat64
	wireValString
	wireValBool
	wireValBytes
	wireValInt64Slice
	wireValIDSlice
	wireValGob // application-defined Value, embedded gob blob
)

// ErrNotWireEncodable reports a message type the binary codec does not
// cover; callers fall back to the gob path.
var ErrNotWireEncodable = errors.New("proto: message not wire-encodable")

// errWireCorrupt reports malformed codec input.
var errWireCorrupt = errors.New("proto: corrupt wire encoding")

// AppendWire appends the binary encoding of msg to buf and reports whether
// the codec covers the message type; unsupported types return (buf, false)
// with buf unchanged.
func AppendWire(buf []byte, msg any) ([]byte, bool) {
	switch m := msg.(type) {
	case ReadReq:
		buf = append(buf, wireTagReadReq)
		buf = binary.AppendUvarint(buf, uint64(m.Txn))
		buf = appendWireString(buf, string(m.Obj))
		buf = appendWireBool(buf, m.Write)
		buf = binary.AppendVarint(buf, int64(m.Depth))
		buf = appendWireItems(buf, m.DataSet)
		return appendWireTC(buf, m.TC), true
	case ReadRep:
		buf = append(buf, wireTagReadRep)
		buf = appendWireBool(buf, m.OK)
		buf = appendWireCopy(buf, m.Copy)
		buf = binary.AppendVarint(buf, int64(m.AbortDepth))
		buf = binary.AppendVarint(buf, int64(m.AbortChk))
		buf = appendWireBool(buf, m.LockOnly)
		return appendWireBool(buf, m.WrongShard), true
	case BatchReadReq:
		buf = append(buf, wireTagBatchReadReq)
		buf = binary.AppendUvarint(buf, uint64(m.Txn))
		buf = binary.AppendUvarint(buf, uint64(len(m.Objs)))
		for _, id := range m.Objs {
			buf = appendWireString(buf, string(id))
		}
		buf = appendWireBool(buf, m.Write)
		buf = binary.AppendVarint(buf, int64(m.Depth))
		buf = appendWireBool(buf, m.Rqv)
		buf = binary.AppendVarint(buf, int64(m.From))
		buf = appendWireItems(buf, m.Delta)
		return appendWireTC(buf, m.TC), true
	case BatchReadRep:
		buf = append(buf, wireTagBatchReadRep)
		buf = appendWireBool(buf, m.OK)
		buf = appendWireCopies(buf, m.Copies)
		buf = binary.AppendVarint(buf, int64(m.AbortDepth))
		buf = binary.AppendVarint(buf, int64(m.AbortChk))
		buf = appendWireBool(buf, m.LockOnly)
		buf = appendWireBool(buf, m.NeedFull)
		return appendWireBool(buf, m.WrongShard), true
	case PrepareReq:
		buf = append(buf, wireTagPrepareReq)
		buf = binary.AppendUvarint(buf, uint64(m.Txn))
		buf = appendWireItems(buf, m.Reads)
		buf = appendWireCopies(buf, m.Writes)
		buf = binary.AppendUvarint(buf, uint64(len(m.AbsLocks)))
		for _, l := range m.AbsLocks {
			buf = appendWireString(buf, l)
		}
		buf = binary.AppendUvarint(buf, uint64(m.Owner))
		return appendWireTC(buf, m.TC), true
	case PrepareRep:
		buf = append(buf, wireTagPrepareRep)
		buf = appendWireBool(buf, m.OK)
		return appendWireBool(buf, m.WrongShard), true
	case DecideReq:
		buf = append(buf, wireTagDecideReq)
		buf = binary.AppendUvarint(buf, uint64(m.Txn))
		buf = appendWireBool(buf, m.Commit)
		buf = appendWireCopies(buf, m.Writes)
		return appendWireTC(buf, m.TC), true
	case DecideRep:
		return append(buf, wireTagDecideRep), true
	case ReleaseReq:
		buf = append(buf, wireTagReleaseReq)
		buf = binary.AppendUvarint(buf, uint64(m.Owner))
		return appendWireTC(buf, m.TC), true
	case ReleaseRep:
		return append(buf, wireTagReleaseRep), true
	case LoadReq:
		buf = append(buf, wireTagLoadReq)
		return appendWireCopies(buf, m.Objects), true
	case LoadRep:
		return append(buf, wireTagLoadRep), true
	case DumpReq:
		buf = append(buf, wireTagDumpReq)
		return appendWireString(buf, string(m.Obj)), true
	case DumpRep:
		buf = append(buf, wireTagDumpRep)
		buf = appendWireBool(buf, m.OK)
		return appendWireCopy(buf, m.Copy), true
	default:
		return buf, false
	}
}

// DecodeWire decodes one message produced by AppendWire. Trailing garbage is
// an error: the enclosing frame length must match the encoding exactly.
func DecodeWire(b []byte) (any, error) {
	r := &wireReader{b: b}
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty buffer", errWireCorrupt)
	}
	tag := r.byte()
	var msg any
	switch tag {
	case wireTagReadReq:
		msg = ReadReq{
			Txn:     TxnID(r.uvarint()),
			Obj:     ObjectID(r.str()),
			Write:   r.bool(),
			Depth:   int(r.varint()),
			DataSet: r.items(),
			TC:      r.tc(),
		}
	case wireTagReadRep:
		msg = ReadRep{
			OK:         r.bool(),
			Copy:       r.objCopy(),
			AbortDepth: int(r.varint()),
			AbortChk:   int(r.varint()),
			LockOnly:   r.bool(),
			WrongShard: r.bool(),
		}
	case wireTagBatchReadReq:
		m := BatchReadReq{Txn: TxnID(r.uvarint())}
		if n := r.sliceLen(1); n > 0 {
			m.Objs = make([]ObjectID, 0, n)
			for i := 0; i < n; i++ {
				m.Objs = append(m.Objs, ObjectID(r.str()))
			}
		}
		m.Write = r.bool()
		m.Depth = int(r.varint())
		m.Rqv = r.bool()
		m.From = int(r.varint())
		m.Delta = r.items()
		m.TC = r.tc()
		msg = m
	case wireTagBatchReadRep:
		msg = BatchReadRep{
			OK:         r.bool(),
			Copies:     r.copies(),
			AbortDepth: int(r.varint()),
			AbortChk:   int(r.varint()),
			LockOnly:   r.bool(),
			NeedFull:   r.bool(),
			WrongShard: r.bool(),
		}
	case wireTagPrepareReq:
		m := PrepareReq{Txn: TxnID(r.uvarint())}
		m.Reads = r.items()
		m.Writes = r.copies()
		if n := r.sliceLen(1); n > 0 {
			m.AbsLocks = make([]string, 0, n)
			for i := 0; i < n; i++ {
				m.AbsLocks = append(m.AbsLocks, r.str())
			}
		}
		m.Owner = TxnID(r.uvarint())
		m.TC = r.tc()
		msg = m
	case wireTagPrepareRep:
		msg = PrepareRep{OK: r.bool(), WrongShard: r.bool()}
	case wireTagDecideReq:
		msg = DecideReq{
			Txn:    TxnID(r.uvarint()),
			Commit: r.bool(),
			Writes: r.copies(),
			TC:     r.tc(),
		}
	case wireTagDecideRep:
		msg = DecideRep{}
	case wireTagReleaseReq:
		msg = ReleaseReq{Owner: TxnID(r.uvarint()), TC: r.tc()}
	case wireTagReleaseRep:
		msg = ReleaseRep{}
	case wireTagLoadReq:
		msg = LoadReq{Objects: r.copies()}
	case wireTagLoadRep:
		msg = LoadRep{}
	case wireTagDumpReq:
		msg = DumpReq{Obj: ObjectID(r.str())}
	case wireTagDumpRep:
		msg = DumpRep{OK: r.bool(), Copy: r.objCopy()}
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", errWireCorrupt, tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errWireCorrupt, len(r.b)-r.off)
	}
	return msg, nil
}

// WireEncodable reports whether msg is covered by the binary codec without
// encoding it (multicast planning).
func WireEncodable(msg any) bool {
	switch msg.(type) {
	case ReadReq, ReadRep, BatchReadReq, BatchReadRep, PrepareReq, PrepareRep,
		DecideReq, DecideRep, ReleaseReq, ReleaseRep, LoadReq, LoadRep, DumpReq, DumpRep:
		return true
	default:
		return false
	}
}

// ---- encode helpers ----

func appendWireBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendWireTC writes the trace context with a presence byte so untraced
// runs pay one byte, not three varints.
func appendWireTC(buf []byte, tc TraceContext) []byte {
	if !tc.Valid() {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, tc.Trace)
	buf = binary.AppendUvarint(buf, tc.Span)
	return binary.AppendUvarint(buf, tc.Parent)
}

func appendWireItems(buf []byte, items []DataItem) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = appendWireString(buf, string(it.ID))
		buf = binary.AppendUvarint(buf, uint64(it.Version))
		buf = binary.AppendVarint(buf, int64(it.OwnerDepth))
		buf = binary.AppendVarint(buf, int64(it.OwnerChk))
	}
	return buf
}

func appendWireCopy(buf []byte, c ObjectCopy) []byte {
	buf = appendWireString(buf, string(c.ID))
	buf = binary.AppendUvarint(buf, uint64(c.Version))
	return appendWireValue(buf, c.Val)
}

func appendWireCopies(buf []byte, cs []ObjectCopy) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cs)))
	for _, c := range cs {
		buf = appendWireCopy(buf, c)
	}
	return buf
}

func appendWireValue(buf []byte, v Value) []byte {
	switch val := v.(type) {
	case nil:
		return append(buf, wireValNil)
	case Int64:
		buf = append(buf, wireValInt64)
		return binary.AppendVarint(buf, int64(val))
	case Float64:
		buf = append(buf, wireValFloat64)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(float64(val)))
		return append(buf, b[:]...)
	case String:
		buf = append(buf, wireValString)
		return appendWireString(buf, string(val))
	case Bool:
		buf = append(buf, wireValBool)
		return appendWireBool(buf, bool(val))
	case Bytes:
		buf = append(buf, wireValBytes)
		buf = binary.AppendUvarint(buf, uint64(len(val)))
		return append(buf, val...)
	case Int64Slice:
		buf = append(buf, wireValInt64Slice)
		buf = binary.AppendUvarint(buf, uint64(len(val)))
		for _, n := range val {
			buf = binary.AppendVarint(buf, n)
		}
		return buf
	case IDSlice:
		buf = append(buf, wireValIDSlice)
		buf = binary.AppendUvarint(buf, uint64(len(val)))
		for _, id := range val {
			buf = appendWireString(buf, string(id))
		}
		return buf
	default:
		// Application-defined payload: embed a self-contained gob encoding of
		// the interface (RegisterValue made the concrete type known to gob).
		var blob bytes.Buffer
		if err := gob.NewEncoder(&blob).Encode(&v); err != nil {
			// Unencodable values would also fail on the pure-gob path; encode
			// the failure so it surfaces as a decode error, not corruption.
			blob.Reset()
		}
		buf = append(buf, wireValGob)
		buf = binary.AppendUvarint(buf, uint64(blob.Len()))
		return append(buf, blob.Bytes()...)
	}
}

// ---- decode helpers ----

// wireReader is a bounds-checked cursor over one encoded message. The first
// error sticks; subsequent reads return zero values so decode code stays
// linear.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errWireCorrupt, what, r.off)
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) bool() bool { return r.byte() != 0 }

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// sliceLen reads a count prefix and bounds it: each element needs at least
// minBytes of remaining input, so a hostile count cannot drive a huge
// allocation.
func (r *wireReader) sliceLen(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(r.b)-r.off)/uint64(minBytes)+1 {
		r.fail("slice length exceeds input")
		return 0
	}
	return int(n)
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated bytes")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *wireReader) str() string { return string(r.take(int(r.uvarint()))) }

func (r *wireReader) tc() TraceContext {
	if r.byte() == 0 {
		return TraceContext{}
	}
	return TraceContext{Trace: r.uvarint(), Span: r.uvarint(), Parent: r.uvarint()}
}

func (r *wireReader) items() []DataItem {
	n := r.sliceLen(4)
	if n == 0 {
		return nil
	}
	items := make([]DataItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, DataItem{
			ID:         ObjectID(r.str()),
			Version:    Version(r.uvarint()),
			OwnerDepth: int(r.varint()),
			OwnerChk:   int(r.varint()),
		})
		if r.err != nil {
			return nil
		}
	}
	return items
}

func (r *wireReader) objCopy() ObjectCopy {
	return ObjectCopy{ID: ObjectID(r.str()), Version: Version(r.uvarint()), Val: r.value()}
}

func (r *wireReader) copies() []ObjectCopy {
	n := r.sliceLen(3)
	if n == 0 {
		return nil
	}
	cs := make([]ObjectCopy, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, r.objCopy())
		if r.err != nil {
			return nil
		}
	}
	return cs
}

func (r *wireReader) value() Value {
	switch kind := r.byte(); kind {
	case wireValNil:
		return nil
	case wireValInt64:
		return Int64(r.varint())
	case wireValFloat64:
		b := r.take(8)
		if len(b) != 8 {
			return nil
		}
		return Float64(math.Float64frombits(binary.BigEndian.Uint64(b)))
	case wireValString:
		return String(r.str())
	case wireValBool:
		return Bool(r.bool())
	case wireValBytes:
		// Zero-length slice payloads decode as typed nils, as they do when an
		// interface-held empty slice crosses gob.
		b := r.take(int(r.uvarint()))
		if len(b) == 0 {
			return Bytes(nil)
		}
		out := make(Bytes, len(b))
		copy(out, b)
		return out
	case wireValInt64Slice:
		n := r.sliceLen(1)
		if n == 0 {
			return Int64Slice(nil)
		}
		out := make(Int64Slice, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, r.varint())
		}
		if r.err != nil {
			return nil
		}
		return out
	case wireValIDSlice:
		n := r.sliceLen(1)
		if n == 0 {
			return IDSlice(nil)
		}
		out := make(IDSlice, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, ObjectID(r.str()))
		}
		if r.err != nil {
			return nil
		}
		return out
	case wireValGob:
		blob := r.take(int(r.uvarint()))
		if r.err != nil {
			return nil
		}
		var v Value
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			r.fail("bad embedded value gob: " + err.Error())
			return nil
		}
		return v
	default:
		r.fail(fmt.Sprintf("unknown value kind %d", kind))
		return nil
	}
}
