package proto

// WireSize estimates the encoded size of a protocol message in bytes. The
// in-memory transport uses it for byte accounting (cluster.Stats.Bytes) so
// that simulated runs report the same bytes-per-transaction trends the TCP
// transport measures from real frames. The estimate is a flat-encoding model
// (fixed word per scalar field, string/slice lengths added), not a gob
// byte-for-byte prediction — what matters for the experiments is that it is
// monotone in message content, so footprint deltas and batched fetches show
// up proportionally.
func WireSize(msg any) int {
	switch m := msg.(type) {
	case ReadReq:
		return msgOverhead + wordSize*3 + len(m.Obj) + dataItemsSize(m.DataSet) + tcSize(m.TC)
	case ReadRep:
		return msgOverhead + wordSize*4 + objectCopySize(m.Copy)
	case BatchReadReq:
		n := msgOverhead + wordSize*5 + dataItemsSize(m.Delta) + tcSize(m.TC)
		for _, id := range m.Objs {
			n += wordSize + len(id)
		}
		return n
	case BatchReadRep:
		n := msgOverhead + wordSize*5
		for _, c := range m.Copies {
			n += objectCopySize(c)
		}
		return n
	case PrepareReq:
		n := msgOverhead + wordSize*2 + dataItemsSize(m.Reads) + tcSize(m.TC)
		for _, w := range m.Writes {
			n += objectCopySize(w)
		}
		for _, l := range m.AbsLocks {
			n += wordSize + len(l)
		}
		return n
	case PrepareRep:
		return msgOverhead + wordSize
	case DecideReq:
		n := msgOverhead + wordSize*2 + tcSize(m.TC)
		for _, w := range m.Writes {
			n += objectCopySize(w)
		}
		return n
	case DecideRep:
		return msgOverhead
	case ReleaseReq:
		return msgOverhead + wordSize + tcSize(m.TC)
	case ReleaseRep:
		return msgOverhead
	case LoadReq:
		n := msgOverhead
		for _, c := range m.Objects {
			n += objectCopySize(c)
		}
		return n
	case LoadRep:
		return msgOverhead
	case DumpReq:
		return msgOverhead + wordSize + len(m.Obj)
	case DumpRep:
		return msgOverhead + wordSize + objectCopySize(m.Copy)
	case ShardMapReq:
		return msgOverhead
	case ShardMapRep:
		return msgOverhead + shardMapSize(m.Map)
	case MapUpdateReq:
		return msgOverhead + shardMapSize(m.Map)
	case MapUpdateRep:
		return msgOverhead + wordSize
	case SlotDumpReq:
		return msgOverhead + wordSize*len(m.Slots)
	case SlotDumpRep:
		n := msgOverhead + wordSize
		for _, c := range m.Copies {
			n += objectCopySize(c)
		}
		return n
	case InstallReq:
		n := msgOverhead
		for _, c := range m.Copies {
			n += objectCopySize(c)
		}
		return n
	case InstallRep:
		return msgOverhead + wordSize
	default:
		return msgOverhead
	}
}

const (
	// msgOverhead models the per-message envelope (type tag, framing).
	msgOverhead = 16
	// wordSize models one encoded scalar field.
	wordSize = 8
	// valueBaseSize is charged for any non-nil Value payload on top of its
	// content estimate (concrete-type tag).
	valueBaseSize = 8
)

func shardMapSize(m ShardMap) int {
	n := wordSize + 2*wordSize*len(m.Slots)
	for _, s := range m.Shards {
		n += wordSize + wordSize*len(s.Members)
	}
	return n
}

func tcSize(tc TraceContext) int {
	if !tc.Valid() {
		return 0 // gob omits zero-valued fields
	}
	return 3 * wordSize
}

func dataItemsSize(items []DataItem) int {
	n := 0
	for _, it := range items {
		n += 3*wordSize + len(it.ID)
	}
	return n
}

func objectCopySize(c ObjectCopy) int {
	return wordSize + len(c.ID) + valueSize(c.Val)
}

func valueSize(v Value) int {
	switch val := v.(type) {
	case nil:
		return 0
	case Int64, Float64, Bool:
		return valueBaseSize + wordSize
	case String:
		return valueBaseSize + len(val)
	case Bytes:
		return valueBaseSize + len(val)
	case Int64Slice:
		return valueBaseSize + wordSize*len(val)
	case IDSlice:
		n := valueBaseSize
		for _, id := range val {
			n += wordSize + len(id)
		}
		return n
	default:
		// Application-defined payloads: charge a flat struct estimate rather
		// than reflecting over them on the hot path.
		return valueBaseSize + 4*wordSize
	}
}
