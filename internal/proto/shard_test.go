package proto

import (
	"fmt"
	"reflect"
	"testing"
)

func TestSlotOfStableAndInRange(t *testing.T) {
	for i := 0; i < 200; i++ {
		id := ObjectID(fmt.Sprintf("obj/%d", i))
		s := SlotOf(id)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotOf(%s) = %d out of range", id, s)
		}
		if again := SlotOf(id); again != s {
			t.Fatalf("SlotOf(%s) unstable: %d then %d", id, s, again)
		}
	}
}

func TestPartitionMapProperties(t *testing.T) {
	nodes := make([]NodeID, 13)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	for _, shards := range []int{1, 2, 3, 4} {
		m := PartitionMap(nodes, shards)
		if !m.Sharded() || len(m.Shards) != shards {
			t.Fatalf("PartitionMap(%d): %d shards", shards, len(m.Shards))
		}
		if m.Epoch == 0 {
			t.Fatal("initial epoch must be nonzero so replicas can install it over the zero map")
		}
		// Every node in exactly one shard; members contiguous and nonempty.
		seen := make(map[NodeID]bool)
		for _, s := range m.Shards {
			if len(s.Members) == 0 {
				t.Fatalf("shard %d empty", s.ID)
			}
			for _, n := range s.Members {
				if seen[n] {
					t.Fatalf("node %v in two shards", n)
				}
				seen[n] = true
			}
		}
		if len(seen) != len(nodes) {
			t.Fatalf("%d nodes covered, want %d", len(seen), len(nodes))
		}
		// Every slot owned by a real shard, none migrating.
		for i, e := range m.Slots {
			if int(e.Owner) < 0 || int(e.Owner) >= shards {
				t.Fatalf("slot %d owner %d", i, e.Owner)
			}
			if e.MovingTo != NoShard {
				t.Fatalf("slot %d migrating in a fresh map", i)
			}
		}
	}
}

func TestOwnsAndMigrating(t *testing.T) {
	nodes := []NodeID{0, 1, 2, 3, 4, 5}
	m := PartitionMap(nodes, 2)
	obj := ObjectID("acct/7")
	owner := m.ShardFor(obj)
	spec, ok := m.Shard(owner)
	if !ok {
		t.Fatalf("shard %d missing", owner)
	}
	other, _ := m.Shard(1 - owner)
	if !m.Owns(spec.Members[0], obj) {
		t.Fatal("owning member must own the object")
	}
	if m.Owns(other.Members[0], obj) {
		t.Fatal("non-member must not own the object")
	}
	// A migrating slot is owned by nobody: both ends fence.
	fenced := m.Clone()
	fenced.Slots[SlotOf(obj)].MovingTo = 1 - owner
	if !fenced.Migrating(obj) {
		t.Fatal("Migrating must report the fence")
	}
	if fenced.Owns(spec.Members[0], obj) || fenced.Owns(other.Members[0], obj) {
		t.Fatal("no node owns a migrating slot")
	}
	// The unsharded zero map owns everything everywhere.
	var zero ShardMap
	if !zero.Owns(0, obj) || zero.Migrating(obj) {
		t.Fatal("zero map must own all and migrate nothing")
	}
}

func TestShardMapCloneIndependent(t *testing.T) {
	m := PartitionMap([]NodeID{0, 1, 2, 3}, 2)
	c := m.Clone()
	c.Epoch++
	c.Slots[0].Owner = 1
	c.Slots[0].MovingTo = 0
	c.Shards[0].Members[0] = 99
	if m.Slots[0] == c.Slots[0] && m.Slots[0].MovingTo == c.Slots[0].MovingTo {
		t.Fatal("clone shares slot storage")
	}
	if m.Shards[0].Members[0] == 99 {
		t.Fatal("clone shares member storage")
	}
	if reflect.DeepEqual(m, c) {
		t.Fatal("mutating the clone changed the original")
	}
}
