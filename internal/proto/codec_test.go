package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// gobRoundTrip pushes msg through gob the way the legacy TCP path does
// (encode as interface, decode as interface), yielding the normalization gob
// applies — zero-length slices come back nil. The binary codec must be
// observationally equivalent to this.
func gobIfaceRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		t.Fatalf("gob encode %T: %v", msg, err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", msg, err)
	}
	return out
}

// wireRoundTrip pushes msg through the binary codec.
func wireRoundTrip(t testing.TB, msg any) any {
	t.Helper()
	buf, ok := AppendWire(nil, msg)
	if !ok {
		t.Fatalf("AppendWire does not cover %T", msg)
	}
	out, err := DecodeWire(buf)
	if err != nil {
		t.Fatalf("DecodeWire(%T): %v", msg, err)
	}
	return out
}

// customWireValue is an application-defined payload exercising the embedded
// gob fallback inside ObjectCopy values.
type customWireValue struct {
	A int64
	B string
}

func (v customWireValue) CloneValue() Value { return v }

func init() { RegisterValue(customWireValue{}) }

// codecExamples is one representative message per covered type, with the
// corner shapes that have bitten before: nil values, version-0 copies,
// negative depth/epoch sentinels, zero and valid trace contexts, and an
// app-defined Value that rides the gob fallback.
func codecExamples() []any {
	return []any{
		ReadReq{Txn: 7, Obj: "acct/alice", Write: true, Depth: 2,
			DataSet: []DataItem{{ID: "x", Version: 4, OwnerDepth: 1, OwnerChk: NoChk}},
			TC:      TraceContext{Trace: 9, Span: 10, Parent: 11}},
		ReadReq{Txn: 1, Obj: ""}, // validation-only read, untraced
		ReadRep{OK: true, Copy: ObjectCopy{ID: "x", Version: 4, Val: Int64(42)},
			AbortDepth: NoDepth, AbortChk: NoChk},
		ReadRep{AbortDepth: 1, AbortChk: 0, LockOnly: true},
		BatchReadReq{Txn: 3, Objs: []ObjectID{"a", "b", "c"}, Write: true, Depth: 1,
			Rqv: true, From: 2,
			Delta: []DataItem{{ID: "a", Version: 1, OwnerDepth: 0, OwnerChk: NoChk}}},
		BatchReadRep{OK: true, AbortDepth: NoDepth, AbortChk: NoChk,
			Copies: []ObjectCopy{
				{ID: "a", Version: 1, Val: String("s")},
				{ID: "fresh"}, // version-0, nil value
				{ID: "f", Version: 2, Val: Float64(2.5)},
				{ID: "b", Version: 3, Val: Bool(true)},
				{ID: "raw", Version: 4, Val: Bytes{1, 2, 3}},
				{ID: "is", Version: 5, Val: Int64Slice{-1, 0, 7}},
				{ID: "ids", Version: 6, Val: IDSlice{"p", "q"}},
				{ID: "app", Version: 7, Val: customWireValue{A: -9, B: "blob"}},
			}},
		BatchReadRep{NeedFull: true, AbortDepth: NoDepth, AbortChk: NoChk},
		PrepareReq{Txn: 12, Reads: []DataItem{{ID: "r", Version: 3, OwnerDepth: 0, OwnerChk: 1}},
			Writes:   []ObjectCopy{{ID: "w", Version: 3, Val: Int64(-5)}},
			AbsLocks: []string{"bucket/3", "bucket/4"}, Owner: 11,
			TC:       TraceContext{Trace: 1, Span: 2, Parent: 3}},
		PrepareRep{OK: true},
		PrepareRep{},
		DecideReq{Txn: 12, Commit: true,
			Writes: []ObjectCopy{{ID: "w", Version: 4, Val: Int64(6)}}},
		DecideReq{Txn: 13}, // abort decision, no writes
		DecideRep{},
		ReleaseReq{Owner: 11},
		ReleaseRep{},
		LoadReq{Objects: []ObjectCopy{{ID: "seed", Version: 1, Val: Int64(100)}}},
		LoadRep{},
		DumpReq{Obj: "x"},
		DumpRep{OK: true, Copy: ObjectCopy{ID: "x", Version: 9, Val: String("v")}},
		DumpRep{},
	}
}

// TestWireCodecMatchesGob pins the codec's contract: for every covered
// message, decode(binary-encode(m)) equals what the gob path would deliver.
func TestWireCodecMatchesGob(t *testing.T) {
	for _, msg := range codecExamples() {
		got := wireRoundTrip(t, msg)
		want := gobIfaceRoundTrip(t, msg)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%T diverges from gob:\n wire: %+v\n  gob: %+v", msg, got, want)
		}
	}
}

// TestWireCodecCompact sanity-checks the point of the exercise: the binary
// encoding of every hot message is materially smaller than its gob frame
// (gob re-sends type descriptors per self-contained blob, which is also what
// a fresh connection pays).
func TestWireCodecCompact(t *testing.T) {
	for _, msg := range codecExamples() {
		wire, ok := AppendWire(nil, msg)
		if !ok {
			t.Fatalf("AppendWire does not cover %T", msg)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
			t.Fatal(err)
		}
		if len(wire) >= buf.Len() {
			t.Errorf("%T: wire %d bytes >= gob %d bytes", msg, len(wire), buf.Len())
		}
	}
}

// TestWireCodecRejectsUnknown pins the fallback signal.
func TestWireCodecRejectsUnknown(t *testing.T) {
	type notAMessage struct{ X int }
	buf, ok := AppendWire(nil, notAMessage{X: 1})
	if ok || len(buf) != 0 {
		t.Fatalf("AppendWire accepted an unknown type (ok=%v, %d bytes)", ok, len(buf))
	}
	if WireEncodable(notAMessage{}) {
		t.Fatal("WireEncodable claims coverage for an unknown type")
	}
	if !WireEncodable(PrepareReq{}) {
		t.Fatal("WireEncodable denies a covered type")
	}
}

// TestWireCodecTruncation: every strict prefix of a valid encoding must
// error, never panic or succeed.
func TestWireCodecTruncation(t *testing.T) {
	for _, msg := range codecExamples() {
		full, _ := AppendWire(nil, msg)
		for cut := 0; cut < len(full); cut++ {
			if out, err := DecodeWire(full[:cut]); err == nil {
				// A prefix that happens to decode must at least not equal a
				// different message silently; zero-field messages (DecideRep)
				// have 1-byte encodings whose prefixes are empty and error.
				t.Fatalf("%T: prefix of %d/%d bytes decoded silently to %+v",
					msg, cut, len(full), out)
			}
		}
	}
}

// fuzzWireMessage derives one covered message from fuzz bytes. It reuses the
// fzReader derivation idiom from fuzz_test.go; Float64 payloads are built
// from integers so NaN never enters DeepEqual comparisons.
func fuzzWireMessage(z *fzReader) any {
	items := func() []DataItem {
		var out []DataItem
		for n := int(z.byte() % 5); n > 0; n-- {
			out = append(out, DataItem{
				ID:         ObjectID(z.str()),
				Version:    Version(z.u64()),
				OwnerDepth: int(int8(z.byte())),
				OwnerChk:   int(int8(z.byte())),
			})
		}
		return out
	}
	value := func() Value {
		switch z.byte() % 8 {
		case 0:
			return nil
		case 1:
			return Int64(int64(z.u64()))
		case 2:
			return Float64(int64(z.u64()))
		case 3:
			return String(z.str())
		case 4:
			return Bool(z.byte()&1 == 1)
		case 5:
			return Bytes(z.str())
		case 6:
			return Int64Slice{int64(z.u64()), int64(z.u64())}
		default:
			return IDSlice{ObjectID(z.str())}
		}
	}
	copies := func() []ObjectCopy {
		var out []ObjectCopy
		for n := int(z.byte() % 5); n > 0; n-- {
			out = append(out, ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64()), Val: value()})
		}
		return out
	}
	tc := func() TraceContext {
		if z.byte()&1 == 0 {
			return TraceContext{}
		}
		return TraceContext{Trace: z.u64() | 1, Span: z.u64(), Parent: z.u64()}
	}
	switch z.byte() % 10 {
	case 0:
		return ReadReq{Txn: TxnID(z.u64()), Obj: ObjectID(z.str()),
			Write: z.byte()&1 == 1, Depth: int(int8(z.byte())), DataSet: items(), TC: tc()}
	case 1:
		return ReadRep{OK: z.byte()&1 == 1,
			Copy:       ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64()), Val: value()},
			AbortDepth: int(int8(z.byte())), AbortChk: int(int8(z.byte())), LockOnly: z.byte()&1 == 1}
	case 2:
		req := BatchReadReq{Txn: TxnID(z.u64()), Write: z.byte()&1 == 1,
			Depth: int(int8(z.byte())), Rqv: z.byte()&1 == 1, From: int(z.byte()), Delta: items(), TC: tc()}
		for n := int(z.byte() % 5); n > 0; n-- {
			req.Objs = append(req.Objs, ObjectID(z.str()))
		}
		return req
	case 3:
		return BatchReadRep{OK: z.byte()&1 == 1, Copies: copies(),
			AbortDepth: int(int8(z.byte())), AbortChk: int(int8(z.byte())),
			LockOnly: z.byte()&1 == 1, NeedFull: z.byte()&1 == 1}
	case 4:
		req := PrepareReq{Txn: TxnID(z.u64()), Reads: items(), Writes: copies(),
			Owner: TxnID(z.u64()), TC: tc()}
		for n := int(z.byte() % 4); n > 0; n-- {
			req.AbsLocks = append(req.AbsLocks, z.str())
		}
		return req
	case 5:
		return PrepareRep{OK: z.byte()&1 == 1}
	case 6:
		return DecideReq{Txn: TxnID(z.u64()), Commit: z.byte()&1 == 1, Writes: copies(), TC: tc()}
	case 7:
		return ReleaseReq{Owner: TxnID(z.u64()), TC: tc()}
	case 8:
		return LoadReq{Objects: copies()}
	default:
		return DumpRep{OK: z.byte()&1 == 1,
			Copy: ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64()), Val: value()}}
	}
}

// FuzzWireCodec is the binary codec's gob-equivalence fuzz target: raw bytes
// must never panic the frame decoder, and every structured message derived
// from those bytes must decode — through the binary codec — to exactly what
// the gob path would deliver. This is the property the mixed-mode transport
// depends on: a replica answering a LegacyWire client and a binary client
// must be indistinguishable to the engine.
func FuzzWireCodec(f *testing.F) {
	for _, seed := range wireFuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Attacker-shaped bytes: errors expected, panics and giant
		// allocations are bugs.
		if msg, err := DecodeWire(data); err == nil {
			// Whatever decoded must re-encode canonically.
			re, ok := AppendWire(nil, msg)
			if !ok {
				t.Fatalf("decoded %T but cannot re-encode", msg)
			}
			if _, err := DecodeWire(re); err != nil {
				t.Fatalf("re-encode of decoded %T fails: %v", msg, err)
			}
		}

		// Structured equivalence against gob.
		z := &fzReader{d: data}
		msg := fuzzWireMessage(z)
		buf, ok := AppendWire(nil, msg)
		if !ok {
			t.Fatalf("AppendWire rejected %T", msg)
		}
		got, err := DecodeWire(buf)
		if err != nil {
			t.Fatalf("DecodeWire(%T): %v", msg, err)
		}
		want := gobIfaceRoundTrip(t, msg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%T diverges from gob:\n wire: %+v\n  gob: %+v", msg, got, want)
		}
	})
}

// wireFuzzSeedInputs is the in-code seed corpus for FuzzWireCodec: valid
// binary encodings (so mutation explores near-valid frames), bytes that
// drive every branch of the structured derivation, and known nasties.
// TestWriteWireFuzzCorpus mirrors these into testdata/fuzz/FuzzWireCodec,
// and TestWireFuzzCorpusPresent fails CI if the checked-in corpus regresses.
func wireFuzzSeedInputs() [][]byte {
	var seeds [][]byte
	for i, msg := range codecExamples() {
		if i%3 != 0 { // a representative spread, not all 21
			continue
		}
		b, _ := AppendWire(nil, msg)
		seeds = append(seeds, b)
	}
	seeds = append(seeds,
		[]byte{},
		[]byte{wireTagInvalid},
		[]byte{wireTagBatchReadRep, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}, // hostile slice count
		bytes.Repeat([]byte{0x80}, 24), // unterminated varint
		[]byte("qrdtm wire"),
	)
	return seeds
}

// TestWriteWireFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzWireCodec from wireFuzzSeedInputs. It only runs when
// WRITE_FUZZ_CORPUS is set:
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteWireFuzzCorpus ./internal/proto/
func TestWriteWireFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range wireFuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireFuzzCorpusPresent is the CI corpus-regression guard: the fuzz
// smoke in `make check` seeds from testdata/fuzz/FuzzWireCodec, so deleting
// or emptying the corpus must fail the build, not silently weaken fuzzing.
func TestWireFuzzCorpusPresent(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireCodec")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("wire fuzz corpus missing: %v", err)
	}
	if want := len(wireFuzzSeedInputs()); len(entries) < want {
		t.Fatalf("wire fuzz corpus regressed: %d files on disk, %d seeds expected "+
			"(regenerate with WRITE_FUZZ_CORPUS=1 go test -run TestWriteWireFuzzCorpus ./internal/proto/)",
			len(entries), want)
	}
}
