// Package proto defines the fundamental identifiers, object model and wire
// messages shared by every component of the QR-DTM stack: clients (the
// transaction engine in internal/core), replica servers (internal/server),
// and the baseline DTM implementations (internal/tfa, internal/decent).
//
// All messages are plain data structs so that they can travel over the
// in-memory simulated transport unchanged and over TCP via encoding/gob.
package proto

import (
	"encoding/gob"
	"fmt"
)

// NodeID identifies a replica (or client-hosting) node in the cluster.
// Nodes are numbered 0..N-1 and arranged in a logical ternary tree in heap
// order (children of i are 3i+1, 3i+2, 3i+3).
type NodeID int

// ObjectID names a shared transactional object.
type ObjectID string

// Version is a monotonically increasing per-object commit counter. Version 0
// means "never written"; the first commit installs version 1.
type Version uint64

// TxnID identifies one attempt of a root transaction. Each retry of a root
// transaction allocates a fresh TxnID, so replica-side metadata (PR/PW lists,
// protected flags) never confuses two attempts.
type TxnID uint64

// NoChk is the sentinel checkpoint epoch used by non-checkpointed
// transactions in DataItem.OwnerChk and in abort replies.
const NoChk = -1

// NoDepth is the sentinel owner depth meaning "no abort target" in replies.
const NoDepth = -1

// Value is the payload stored in a transactional object. Implementations
// must provide a deep copy so that replicas and transactions never alias
// mutable state. Values that cross the TCP transport must also be registered
// with RegisterValue.
type Value interface {
	CloneValue() Value
}

// ObjectCopy is one replica's copy of an object as shipped to a client, or a
// client's buffered write as shipped to the write quorum.
type ObjectCopy struct {
	ID      ObjectID
	Version Version
	Val     Value
}

// Clone deep-copies the object copy (the Value included).
func (c ObjectCopy) Clone() ObjectCopy {
	out := c
	if c.Val != nil {
		out.Val = c.Val.CloneValue()
	}
	return out
}

// DataItem describes one entry of a transaction's read-set or write-set for
// the purposes of read-quorum validation (Rqv). OwnerDepth is the nesting
// depth of the (sub)transaction that acquired the object (0 = root); the
// shallowest invalid owner becomes the abort target under closed nesting.
// OwnerChk is the checkpoint epoch during which the object was acquired
// (QR-CHK); the minimum invalid epoch becomes the rollback target.
type DataItem struct {
	ID         ObjectID
	Version    Version
	OwnerDepth int
	OwnerChk   int
}

// ReadReq asks a read-quorum node for its copy of one object, and — when
// DataSet is non-nil — asks it to first validate the requester's footprint
// (Rqv). Write marks the request as acquiring a writable copy, which only
// affects which potential-conflict list (PR vs PW) the root is recorded in.
// An empty Obj requests validation only (no fetch): flat transactions use
// it to tell a genuine application error apart from a crash caused by an
// inconsistent (zombie) snapshot.
type ReadReq struct {
	Txn     TxnID
	Obj     ObjectID
	Write   bool
	Depth   int          // nesting depth of the requester; 0 means root — only roots are recorded in PR/PW (Algorithm 2, line 17)
	DataSet []DataItem   // nil: plain QR read without incremental validation
	TC      TraceContext // causal trace context (zero when tracing is off)
}

// ReadRep is a replica's answer to ReadReq. If OK, Copy holds the replica's
// current committed copy. Otherwise AbortDepth (and, for checkpointed
// transactions, AbortChk) identify the partial-abort target computed by the
// validation procedure (Algorithm 1 / Algorithm 4 in the paper).
type ReadRep struct {
	OK         bool
	Copy       ObjectCopy
	AbortDepth int
	AbortChk   int
	// LockOnly qualifies a denial: every conflict was a pending commit's
	// lock, none a committed newer version (contention-manager input).
	LockOnly bool
	// WrongShard qualifies a denial: the replica does not own the requested
	// object (or one of the footprint items it was asked to certify) under
	// its current shard map, or the object's slot is mid-migration. The
	// requester must refresh its shard map and re-route.
	WrongShard bool
}

// BatchReadReq is the multi-object, delta-validated generalisation of
// ReadReq: it asks a read-quorum node for its copies of every object in Objs
// in one round, and — when Rqv is set — carries only the *suffix* of the
// requester's footprint this replica has not validated yet. The replica
// keeps a per-transaction validation session (the footprint entries it has
// accepted so far, in log order); From is the requester's watermark for this
// replica — the length of the session prefix both sides agree on — and Delta
// holds the footprint log entries starting at offset From. The replica
// reconciles by truncating its session to From and appending Delta, then
// validates the *entire* session, so a positive reply means the whole
// accumulated footprint is still valid — exactly the guarantee the
// full-footprint ReadReq gives, at O(delta) instead of O(footprint) bytes.
type BatchReadReq struct {
	Txn   TxnID
	Objs  []ObjectID
	Write bool
	Depth int // nesting depth of the requester; 0 means root (PR/PW recording, as in ReadReq)
	// Rqv requests validation. It is explicit (rather than Delta != nil as
	// in ReadReq) because gob does not preserve nil-vs-empty for slices.
	Rqv   bool
	From  int          // validation watermark: footprint log entries [0, From) were already shipped to this replica
	Delta []DataItem   // footprint log entries [From, From+len(Delta))
	TC    TraceContext // causal trace context (zero when tracing is off)
}

// BatchReadRep answers BatchReadReq. If OK, Copies holds the replica's
// committed copies in Objs order. NeedFull reports that the replica has no
// session prefix of length From (it restarted, or evicted the session): the
// requester must reset its watermark for this replica and resend the whole
// footprint. Denials carry the same abort-routing answer as ReadRep.
type BatchReadRep struct {
	OK         bool
	Copies     []ObjectCopy
	AbortDepth int
	AbortChk   int
	LockOnly   bool
	NeedFull   bool
	// WrongShard: as in ReadRep — the replica no longer owns one of the
	// requested objects (stale client map, or mid-migration fence).
	WrongShard bool
}

// PrepareReq is phase one of the two-phase commit sent to the write quorum.
// Reads carries the read-set versions to validate; Writes carries the
// buffered writes with the version at which each object was acquired
// (validation) — the new value is installed by DecideReq on commit.
type PrepareReq struct {
	Txn    TxnID
	Reads  []DataItem
	Writes []ObjectCopy
	// AbsLocks are abstract locks to acquire for open nesting: they are
	// granted to Owner (the root transaction) and survive this commit,
	// until an explicit ReleaseReq — the TFA-ON mechanism adapted to
	// quorums. Pairwise-intersecting write quorums make the grant mutually
	// exclusive.
	AbsLocks []string
	// Owner is the root transaction that holds AbsLocks (zero when no
	// abstract locks are requested).
	Owner TxnID
	TC    TraceContext // causal trace context (zero when tracing is off)
}

// PrepareRep is a write-quorum node's vote.
type PrepareRep struct {
	OK bool
	// WrongShard qualifies a No vote: the replica does not own every object
	// in the prepare under its current shard map (stale client routing, or a
	// slot fenced mid-migration). The coordinator refreshes its map and
	// retries the transaction rather than counting this as a conflict.
	WrongShard bool
}

// DecideReq is phase two of the commit protocol: Commit==true installs
// Writes (whose Version fields now carry the *new* version) and releases the
// locks; Commit==false only releases the locks taken by the prepare.
type DecideReq struct {
	Txn    TxnID
	Commit bool
	Writes []ObjectCopy
	TC     TraceContext // causal trace context (zero when tracing is off)
}

// DecideRep acknowledges a DecideReq.
type DecideRep struct{}

// ReleaseReq releases every abstract lock held by a root transaction
// (sent to the write quorum when the root finally commits or gives up).
type ReleaseReq struct {
	Owner TxnID
	TC    TraceContext // causal trace context (zero when tracing is off)
}

// ReleaseRep acknowledges a ReleaseReq.
type ReleaseRep struct{}

// LoadReq asks a replica to install an object unconditionally (cluster
// bootstrap / benchmark population). It bypasses concurrency control and is
// only sent while no transactions run.
type LoadReq struct {
	Objects []ObjectCopy
}

// LoadRep acknowledges a LoadReq.
type LoadRep struct{}

// DumpReq asks a replica for its committed copy of an object without any
// transactional bookkeeping (tests and tooling only).
type DumpReq struct {
	Obj ObjectID
}

// DumpRep answers DumpReq. OK is false if the replica has no copy.
type DumpRep struct {
	OK   bool
	Copy ObjectCopy
}

// RegisterValue registers a concrete Value implementation with gob so it can
// cross the TCP transport inside ObjectCopy. The in-memory transport does
// not need registration.
func RegisterValue(v Value) {
	gob.Register(v)
}

func init() {
	gob.Register(ReadReq{})
	gob.Register(ReadRep{})
	gob.Register(BatchReadReq{})
	gob.Register(BatchReadRep{})
	gob.Register(PrepareReq{})
	gob.Register(PrepareRep{})
	gob.Register(DecideReq{})
	gob.Register(DecideRep{})
	gob.Register(ReleaseReq{})
	gob.Register(ReleaseRep{})
	gob.Register(LoadReq{})
	gob.Register(LoadRep{})
	gob.Register(DumpReq{})
	gob.Register(DumpRep{})
}

func (n NodeID) String() string   { return fmt.Sprintf("n%d", int(n)) }
func (t TxnID) String() string    { return fmt.Sprintf("t%d", uint64(t)) }
func (o ObjectID) String() string { return string(o) }
