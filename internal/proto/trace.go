package proto

import (
	"encoding/gob"
	"fmt"
)

// TraceContext is the causal context piggybacked on every request message.
// Trace identifies one root transaction's distributed trace; Span is the
// client-side span that issued the request (the replica-side serve span
// records it as its parent); Parent is the issuing span's own parent, kept
// so a partial collection can still be ordered. The zero value means
// "tracing off": replicas must not record spans for it.
//
// The context travels inside the request structs themselves, so every
// transport — MemTransport, TCP/gob, and the retry/fault wrappers, which
// all pass requests through opaquely — propagates it without knowing it
// exists. gob omits zero-valued fields, so untraced runs pay nothing extra
// on the wire.
type TraceContext struct {
	Trace  uint64
	Span   uint64
	Parent uint64
}

// Valid reports whether the context belongs to an active trace.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// SpanKind classifies a span in the QR-DTM taxonomy. Client-side kinds are
// opened by internal/core; serve-side kinds by internal/server.
type SpanKind int

const (
	// SpanRoot covers one call to Atomic/AtomicSteps: every attempt,
	// backoff and the final commit or give-up.
	SpanRoot SpanKind = iota
	// SpanAttempt covers one attempt of a root transaction (one TxnID).
	SpanAttempt
	// SpanCT covers one attempt of a closed-nested subtransaction.
	SpanCT
	// SpanRead covers one read-quorum multicast round (Rqv included).
	SpanRead
	// SpanCommit covers the commit protocol: prepare multicast through the
	// decide multicast. Items carries the installed writes on success.
	SpanCommit
	// SpanAbort marks an abort decision; Depth/Chk carry the routed target.
	SpanAbort
	// SpanCheckpoint marks taking a checkpoint (Chk = new epoch).
	SpanCheckpoint
	// SpanRollback marks a checkpoint rollback (Chk = target epoch).
	SpanRollback
	// SpanServeRead is a replica serving one ReadReq (validation + fetch).
	SpanServeRead
	// SpanServePrepare is a replica voting on one PrepareReq.
	SpanServePrepare
	// SpanServeDecide is a replica applying one DecideReq. Items carries
	// the writes installed on commit.
	SpanServeDecide
	// SpanServeRelease is a replica releasing abstract locks.
	SpanServeRelease

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanRoot:         "root",
	SpanAttempt:      "attempt",
	SpanCT:           "ct",
	SpanRead:         "read",
	SpanCommit:       "commit",
	SpanAbort:        "abort",
	SpanCheckpoint:   "checkpoint",
	SpanRollback:     "rollback",
	SpanServeRead:    "serve-read",
	SpanServePrepare: "serve-prepare",
	SpanServeDecide:  "serve-decide",
	SpanServeRelease: "serve-release",
}

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if k < 0 || k >= numSpanKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return spanKindNames[k]
}

// MarshalText renders the kind name in JSON trace dumps. gob ignores it
// (gob only consults GobEncoder/BinaryMarshaler) and keeps encoding the
// int, so the wire format stays compact.
func (k SpanKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name produced by MarshalText.
func (k *SpanKind) UnmarshalText(b []byte) error {
	for i, n := range spanKindNames {
		if n == string(b) {
			*k = SpanKind(i)
			return nil
		}
	}
	return fmt.Errorf("proto: unknown span kind %q", b)
}

// SpanItem is one object touched by a span (commit/decide installed writes).
type SpanItem struct {
	Obj     ObjectID `json:"obj"`
	Version Version  `json:"version"`
}

// Span is one completed span as stored in a node's span buffer and shipped
// by TraceDumpRep. Start/End are UnixNano so spans merged from different
// processes share a clock base (modulo physical clock skew — the checker
// only orders spans whose intervals do not overlap).
type Span struct {
	Trace  uint64   `json:"trace"`
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Node   NodeID   `json:"node"`
	Kind   SpanKind `json:"kind"`
	Start  int64    `json:"start"`
	End    int64    `json:"end"`

	// Protocol payload; zero values are omitted from JSON where possible.
	Txn     TxnID      `json:"txn,omitempty"`
	Obj     ObjectID   `json:"obj,omitempty"`
	Version Version    `json:"version,omitempty"`
	Depth   int        `json:"depth,omitempty"`
	Chk     int        `json:"chk,omitempty"`
	OK      bool       `json:"ok"`
	Note    string     `json:"note,omitempty"`
	Items   []SpanItem `json:"items,omitempty"`
	// Shard is the quorum group the span's round targeted, as (ShardID + 1)
	// so the zero value still means "not shard-tagged" (unsharded runs and
	// spans that touch no particular shard). Use ShardID/SetShard.
	Shard int `json:"shard,omitempty"`
}

// ShardID returns the shard the span was tagged with, or NoShard when the
// span carries no shard tag.
func (s *Span) ShardID() ShardID {
	if s.Shard == 0 {
		return NoShard
	}
	return ShardID(s.Shard - 1)
}

// SetShard tags the span with a shard id (stored off-by-one; see Shard).
func (s *Span) SetShard(id ShardID) {
	if id >= 0 {
		s.Shard = int(id) + 1
	}
}

// Context returns the span's identity as a TraceContext for propagation.
func (s *Span) Context() TraceContext {
	return TraceContext{Trace: s.Trace, Span: s.ID, Parent: s.Parent}
}

// TraceDumpReq asks a replica for the contents of its span buffer (trace
// collection; tests and tooling).
type TraceDumpReq struct{}

// TraceDumpRep answers TraceDumpReq with the replica's buffered spans.
type TraceDumpRep struct {
	Node  NodeID
	Spans []Span
}

func init() {
	gob.Register(TraceDumpReq{})
	gob.Register(TraceDumpRep{})
}
