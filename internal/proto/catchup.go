package proto

// This file defines the log-tail catch-up protocol for durable replicas
// (internal/wal). A replica restarting from its data directory asks each
// peer for the log records it missed while down, identified by a per-peer
// cursor (the highest record index of that peer's log it has applied). The
// messages are cold-path and ride the gob fallback of the TCP transport,
// like the reconfiguration messages above.

import "encoding/gob"

// Log record kinds served over the wire. Only externally meaningful
// mutations are shipped: decisions and installs. A peer's prepare votes,
// shard-map updates and its own cursors are local bookkeeping.
const (
	// LogKindDecide is a commit/abort decision: Txn, Commit and Copies (the
	// decided writes) are set.
	LogKindDecide uint8 = 1
	// LogKindInstall is an unconditional-newer install (bootstrap Load or
	// recovery InstallReq): only Copies is set, applied with InstallNewer
	// semantics on the receiver.
	LogKindInstall uint8 = 2
)

// LogRecord is one entry of a peer's write-ahead log as served for
// catch-up.
type LogRecord struct {
	Index  uint64
	Kind   uint8
	Txn    TxnID
	Commit bool
	Copies []ObjectCopy
}

// LogTailReq asks a durable replica for its log records with index > After.
type LogTailReq struct {
	After uint64
	Max   int // cap on records per reply (0 = server default)
}

// LogTailRep answers LogTailReq. OK is false when the replica keeps no log
// (not running durably). Compacted reports that records past After were
// already folded into a snapshot and deleted — the requester must fall back
// to a full state transfer. Next is the highest log index this reply covers
// (served or skipped as local-only bookkeeping): the requester advances its
// cursor to Next and, when More is set, loops with After = Next.
type LogTailRep struct {
	OK        bool
	Compacted bool
	Records   []LogRecord
	Next      uint64
	More      bool
}

func init() {
	gob.Register(LogTailReq{})
	gob.Register(LogTailRep{})
}
