package proto

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// fuzzShardMap derives a structurally plausible shard map from fuzz bytes:
// up to 4 shards over a small node range, slot owners always naming a real
// shard, MovingTo either NoShard or a real shard.
func fuzzShardMap(z *fzReader) ShardMap {
	shards := int(z.byte()%4) + 1
	m := ShardMap{Epoch: z.u64() % 1000, Slots: make([]SlotEntry, NumSlots)}
	node := 0
	for s := 0; s < shards; s++ {
		spec := ShardSpec{ID: ShardID(s)}
		for n := int(z.byte()%4) + 1; n > 0; n-- {
			spec.Members = append(spec.Members, NodeID(node))
			node++
		}
		m.Shards = append(m.Shards, spec)
	}
	for i := range m.Slots {
		m.Slots[i].Owner = ShardID(int(z.byte()) % shards)
		if z.byte()%4 == 0 {
			m.Slots[i].MovingTo = ShardID(int(z.byte()) % shards)
		} else {
			m.Slots[i].MovingTo = NoShard
		}
	}
	return m
}

// fuzzPrepareReq builds the 2PC prepare request, the message a cross-shard
// commit fans out per participating shard.
func fuzzPrepareReq(z *fzReader) PrepareReq {
	req := PrepareReq{
		Txn:   TxnID(z.u64()),
		Owner: TxnID(z.u64()),
		TC:    TraceContext{Trace: z.u64(), Span: z.u64(), Parent: z.u64()},
	}
	for n := int(z.byte() % 5); n > 0; n-- {
		req.Reads = append(req.Reads, DataItem{
			ID:         ObjectID(z.str()),
			Version:    Version(z.u64()),
			OwnerDepth: int(int8(z.byte())),
			OwnerChk:   int(int8(z.byte())),
		})
	}
	for n := int(z.byte() % 5); n > 0; n-- {
		c := ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64())}
		if z.byte()&1 == 1 {
			c.Val = Int64(int64(z.u64()))
		}
		req.Writes = append(req.Writes, c)
	}
	for n := int(z.byte() % 4); n > 0; n-- {
		req.AbsLocks = append(req.AbsLocks, z.str())
	}
	return req
}

// gobRT pushes msg through a gob round trip into out (a pointer).
func gobRT(t *testing.T, msg, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
}

// normalizeMap maps gob's nil/empty-slice ambiguity away.
func normalizeMap(m ShardMap) ShardMap {
	if len(m.Slots) == 0 {
		m.Slots = nil
	}
	if len(m.Shards) == 0 {
		m.Shards = nil
	}
	for i := range m.Shards {
		if len(m.Shards[i].Members) == 0 {
			m.Shards[i].Members = nil
		}
	}
	return m
}

func normalizePrepareReq(r PrepareReq) PrepareReq {
	if len(r.Reads) == 0 {
		r.Reads = nil
	}
	if len(r.Writes) == 0 {
		r.Writes = nil
	}
	if len(r.AbsLocks) == 0 {
		r.AbsLocks = nil
	}
	return r
}

// FuzzShardWire exercises the sharding and 2PC wire messages: arbitrary
// bytes must never panic the gob decoder, and structured messages derived
// from the same bytes must survive a gob round trip unchanged, keep a
// positive WireSize, and — for the types the binary codec covers — decode
// from the binary wire identically to the gob path.
func FuzzShardWire(f *testing.F) {
	for _, seed := range shardFuzzSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Robustness: attacker-shaped bytes error, never panic.
		for _, target := range []any{&ShardMap{}, &MapUpdateReq{}, &SlotDumpRep{}, &InstallReq{}, &PrepareReq{}, &PrepareRep{}} {
			_ = gob.NewDecoder(bytes.NewReader(data)).Decode(target)
		}

		z := &fzReader{d: data}

		// Shard map and the reconfiguration messages wrapping it.
		m := fuzzShardMap(z)
		var mOut ShardMap
		gobRT(t, m, &mOut)
		if a, b := normalizeMap(m), normalizeMap(mOut); !reflect.DeepEqual(a, b) {
			t.Fatalf("ShardMap round trip:\n in: %+v\nout: %+v", a, b)
		}
		var upd MapUpdateReq
		gobRT(t, MapUpdateReq{Map: m}, &upd)
		if a, b := normalizeMap(m), normalizeMap(upd.Map); !reflect.DeepEqual(a, b) {
			t.Fatalf("MapUpdateReq round trip:\n in: %+v\nout: %+v", a, b)
		}
		for _, msg := range []any{MapUpdateReq{Map: m}, ShardMapRep{Map: m}, ShardMapReq{}, MapUpdateRep{Epoch: m.Epoch}} {
			if sz := WireSize(msg); sz <= 0 {
				t.Fatalf("WireSize(%T) = %d", msg, sz)
			}
		}

		// Migration drain messages.
		dump := SlotDumpRep{Protected: z.byte()&1 == 1}
		for n := int(z.byte() % 5); n > 0; n-- {
			dump.Copies = append(dump.Copies, ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64()), Val: Int64(int64(z.u64()))})
		}
		var dumpOut SlotDumpRep
		gobRT(t, dump, &dumpOut)
		if len(dumpOut.Copies) != len(dump.Copies) || dumpOut.Protected != dump.Protected {
			t.Fatalf("SlotDumpRep round trip: in %+v out %+v", dump, dumpOut)
		}
		if sz := WireSize(dump); sz <= 0 {
			t.Fatalf("WireSize(SlotDumpRep) = %d", sz)
		}

		// 2PC messages: gob round trip plus binary-codec equivalence (the
		// pipelined transport ships these in binary; both paths must agree).
		preq := fuzzPrepareReq(z)
		var preqOut PrepareReq
		gobRT(t, preq, &preqOut)
		if a, b := normalizePrepareReq(preq), normalizePrepareReq(preqOut); !reflect.DeepEqual(a, b) {
			t.Fatalf("PrepareReq round trip:\n in: %+v\nout: %+v", a, b)
		}
		wire := wireRoundTrip(t, preq)
		if a, b := normalizePrepareReq(preq), normalizePrepareReq(wire.(PrepareReq)); !reflect.DeepEqual(a, b) {
			t.Fatalf("PrepareReq binary codec diverges from gob:\n in: %+v\nout: %+v", a, b)
		}
		prep := PrepareRep{OK: z.byte()&1 == 1, WrongShard: z.byte()&1 == 1}
		if got := wireRoundTrip(t, prep).(PrepareRep); got != prep {
			t.Fatalf("PrepareRep binary codec: in %+v out %+v", prep, got)
		}
		dec := DecideReq{Txn: TxnID(z.u64()), Commit: z.byte()&1 == 1, TC: TraceContext{Trace: z.u64()}}
		for n := int(z.byte() % 4); n > 0; n-- {
			dec.Writes = append(dec.Writes, ObjectCopy{ID: ObjectID(z.str()), Version: Version(z.u64()), Val: Int64(int64(z.u64()))})
		}
		got := wireRoundTrip(t, dec).(DecideReq)
		if got.Txn != dec.Txn || got.Commit != dec.Commit || len(got.Writes) != len(dec.Writes) {
			t.Fatalf("DecideReq binary codec: in %+v out %+v", dec, got)
		}
	})
}

// shardFuzzSeedInputs is the in-code seed corpus for FuzzShardWire: real gob
// encodings of representative shard/2PC messages plus branch-driving byte
// patterns. TestWriteShardFuzzCorpus mirrors these into testdata/fuzz.
func shardFuzzSeedInputs() [][]byte {
	enc := func(msg any) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	m := PartitionMap([]NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 4)
	moving := m.Clone()
	moving.Epoch++
	moving.Slots[3].MovingTo = 1
	return [][]byte{
		{},
		[]byte("shards"),
		enc(m),
		enc(MapUpdateReq{Map: moving}),
		enc(SlotDumpRep{Copies: []ObjectCopy{{ID: "acct/x", Version: 7, Val: Int64(93)}}, Protected: true}),
		enc(InstallReq{Copies: []ObjectCopy{{ID: "acct/x", Version: 7, Val: Int64(93)}}}),
		enc(PrepareReq{Txn: 9, Reads: []DataItem{{ID: "r", Version: 2, OwnerDepth: 0, OwnerChk: NoChk}},
			Writes: []ObjectCopy{{ID: "w", Version: 3, Val: Int64(-1)}}, Owner: 9}),
		enc(PrepareRep{OK: false, WrongShard: true}),
		bytes.Repeat([]byte{0xa5, 0x00, 0x3c}, 40),
	}
}

// TestWriteShardFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzShardWire from shardFuzzSeedInputs. It only runs when
// WRITE_FUZZ_CORPUS is set:
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteShardFuzzCorpus ./internal/proto/
func TestWriteShardFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzShardWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range shardFuzzSeedInputs() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardFuzzCorpusPresent guards the checked-in corpus: the fuzz smoke in
// `make check` seeds from testdata/fuzz/FuzzShardWire, so deleting or
// emptying it must fail the build.
func TestShardFuzzCorpusPresent(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzShardWire")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("shard fuzz corpus missing: %v", err)
	}
	if want := len(shardFuzzSeedInputs()); len(entries) < want {
		t.Fatalf("shard fuzz corpus regressed: %d files on disk, %d seeds expected "+
			"(regenerate with WRITE_FUZZ_CORPUS=1 go test -run TestWriteShardFuzzCorpus ./internal/proto/)",
			len(entries), want)
	}
}
