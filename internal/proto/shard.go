package proto

// This file defines the placement layer that splits the object space across
// independent quorum groups (shards). A ShardMap is a versioned slot table in
// the Redis-cluster style: every ObjectID hashes to one of NumSlots slots,
// every slot is owned by exactly one shard, and every shard is an independent
// replica group running its own ternary quorum tree over its Members.
//
// The map travels by value and is compared by Epoch only: a replica or client
// holding epoch E replaces its map whenever it sees epoch E' > E. Online
// reconfiguration publishes two epochs per move (see core.Reshard): E+1 marks
// the moving slots as migrating (both source and target fence new reads and
// prepares on them), objects are copied while in-flight commits drain, and
// E+2 transfers ownership.

import "encoding/gob"

// ShardID identifies one quorum group in a ShardMap. IDs are dense indexes
// into ShardMap.Shards.
type ShardID int

// NumSlots is the fixed size of the slot table. Placement granularity is a
// slot: reconfiguration moves whole slots between shards. 64 slots keep the
// table tiny on the wire while still letting a handful of shards be
// rebalanced in useful increments.
const NumSlots = 64

// NoShard is the sentinel ShardID used in SlotEntry.MovingTo when a slot is
// not migrating.
const NoShard ShardID = -1

// ShardSpec describes one shard: its id and the replica nodes forming its
// quorum tree. Members are in tree order — Members[0] is the tree root,
// children of position i are positions 3i+1..3i+3.
type ShardSpec struct {
	ID      ShardID
	Members []NodeID
}

// SlotEntry is one slot's placement: the owning shard and, during a
// migration, the shard the slot is moving to (NoShard otherwise).
type SlotEntry struct {
	Owner    ShardID
	MovingTo ShardID
}

// ShardMap is the versioned placement table routing every object to its
// shard. A zero-valued map (Epoch 0, no shards) means "unsharded": callers
// treat the whole cluster as one implicit group and skip ownership checks.
type ShardMap struct {
	Epoch  uint64
	Slots  []SlotEntry // len NumSlots when sharded
	Shards []ShardSpec
}

// SlotOf hashes an object id to its slot (FNV-1a, masked to NumSlots).
func SlotOf(obj ObjectID) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(obj); i++ {
		h ^= uint64(obj[i])
		h *= prime64
	}
	return int(h % NumSlots)
}

// Sharded reports whether the map actually partitions the space (a zero map
// routes everything to the implicit shard 0).
func (m ShardMap) Sharded() bool { return len(m.Shards) > 0 }

// ShardFor returns the shard owning obj. On an unsharded map it returns 0.
func (m ShardMap) ShardFor(obj ObjectID) ShardID {
	if !m.Sharded() || len(m.Slots) < NumSlots {
		return 0
	}
	return m.Slots[SlotOf(obj)].Owner
}

// Migrating reports whether obj's slot is currently moving between shards.
func (m ShardMap) Migrating(obj ObjectID) bool {
	if !m.Sharded() || len(m.Slots) < NumSlots {
		return false
	}
	return m.Slots[SlotOf(obj)].MovingTo != NoShard
}

// Shard returns the spec for id.
func (m ShardMap) Shard(id ShardID) (ShardSpec, bool) {
	if int(id) < 0 || int(id) >= len(m.Shards) {
		return ShardSpec{}, false
	}
	return m.Shards[id], true
}

// Member reports whether node belongs to shard id.
func (m ShardMap) Member(id ShardID, node NodeID) bool {
	s, ok := m.Shard(id)
	if !ok {
		return false
	}
	for _, n := range s.Members {
		if n == node {
			return true
		}
	}
	return false
}

// Owns reports whether node may serve obj under this map: node must belong
// to the owning shard and the slot must not be mid-migration (the migration
// fence — migrating slots reject new reads and prepares at both ends until
// ownership flips). An unsharded map owns everything everywhere.
func (m ShardMap) Owns(node NodeID, obj ObjectID) bool {
	if !m.Sharded() {
		return true
	}
	if m.Migrating(obj) {
		return false
	}
	return m.Member(m.ShardFor(obj), node)
}

// Nodes returns the union of all member node ids, deduplicated, in first-seen
// order.
func (m ShardMap) Nodes() []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, s := range m.Shards {
		for _, n := range s.Members {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// Clone deep-copies the map so a caller can build the next epoch without
// aliasing the current one.
func (m ShardMap) Clone() ShardMap {
	out := m
	out.Slots = append([]SlotEntry(nil), m.Slots...)
	out.Shards = make([]ShardSpec, len(m.Shards))
	for i, s := range m.Shards {
		out.Shards[i] = ShardSpec{ID: s.ID, Members: append([]NodeID(nil), s.Members...)}
	}
	return out
}

// PartitionMap builds the initial placement: nodes split contiguously into
// shards groups (earlier groups take the remainder), slots dealt round-robin.
// shards <= 1 yields a single group over all nodes; epoch starts at 1 so any
// published map outranks the zero map.
func PartitionMap(nodes []NodeID, shards int) ShardMap {
	if shards < 1 {
		shards = 1
	}
	if shards > len(nodes) {
		shards = len(nodes)
	}
	m := ShardMap{Epoch: 1, Slots: make([]SlotEntry, NumSlots)}
	per, extra := len(nodes)/shards, len(nodes)%shards
	off := 0
	for i := 0; i < shards; i++ {
		n := per
		if i < extra {
			n++
		}
		m.Shards = append(m.Shards, ShardSpec{
			ID:      ShardID(i),
			Members: append([]NodeID(nil), nodes[off:off+n]...),
		})
		off += n
	}
	for s := range m.Slots {
		m.Slots[s] = SlotEntry{Owner: ShardID(s % shards), MovingTo: NoShard}
	}
	return m
}

// ---- reconfiguration wire messages (cold path; these ride the gob
// fallback of the TCP transport, so no binary-codec tags are needed) ----

// ShardMapReq asks a replica for its current shard map (clients bootstrap
// and refresh their placement with it).
type ShardMapReq struct{}

// ShardMapRep answers ShardMapReq. A zero-epoch map means the replica is
// unsharded.
type ShardMapRep struct {
	Map ShardMap
}

// MapUpdateReq installs a new shard map on a replica if it is newer than the
// one the replica holds (idempotent, duplicate-tolerant).
type MapUpdateReq struct {
	Map ShardMap
}

// MapUpdateRep reports the epoch the replica holds after the update.
type MapUpdateRep struct {
	Epoch uint64
}

// SlotDumpReq asks a replica for every committed copy whose object hashes
// into one of Slots (migration drain). Protected in the reply reports whether
// any such object is still locked by an in-flight prepare — the migration
// loop must wait it out before transferring ownership.
type SlotDumpReq struct {
	Slots []int
}

// SlotDumpRep answers SlotDumpReq.
type SlotDumpRep struct {
	Copies    []ObjectCopy
	Protected bool
}

// InstallReq asks a replica to install copies that are strictly newer than
// what it holds (migration transfer; InstallNewer semantics, so repeated or
// overlapping transfers are harmless).
type InstallReq struct {
	Copies []ObjectCopy
}

// InstallRep reports how many copies were actually installed; a full drain
// pass that installs zero anywhere has converged.
type InstallRep struct {
	Installed int
}

func init() {
	gob.Register(ShardMapReq{})
	gob.Register(ShardMapRep{})
	gob.Register(MapUpdateReq{})
	gob.Register(MapUpdateRep{})
	gob.Register(SlotDumpReq{})
	gob.Register(SlotDumpRep{})
	gob.Register(InstallReq{})
	gob.Register(InstallRep{})
}
