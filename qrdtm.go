// Package qrdtm is the public face of the QR-DTM library: a fault-tolerant
// distributed transactional memory with quorum-based replication, closed
// nesting (QR-CN) and checkpointing (QR-CHK), reproducing Dhoke, Ravindran
// and Zhang, "On Closed Nesting and Checkpointing in Fault-Tolerant
// Distributed Transactional Memory" (IPDPS 2013).
//
// The quickest way in is a simulated cluster:
//
//	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 13, Mode: qrdtm.Closed})
//	...
//	rt := c.Runtime(0) // transactions issued from node 0
//	err = rt.Atomic(ctx, func(tx *qrdtm.Txn) error {
//	    v, err := tx.Read("acct/alice")
//	    ...
//	    return tx.Write("acct/alice", newVal)
//	})
//
// Everything here is a thin veneer over the implementation packages:
// internal/core (the transaction engine), internal/server (replicas),
// internal/quorum (tree quorums) and internal/cluster (transports).
package qrdtm

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"qrdtm/internal/cluster"
	"qrdtm/internal/core"
	"qrdtm/internal/load"
	"qrdtm/internal/obs"
	"qrdtm/internal/proto"
	"qrdtm/internal/quorum"
	"qrdtm/internal/server"
)

// Re-exported identifiers so applications only import qrdtm.
type (
	// NodeID identifies a replica node.
	NodeID = proto.NodeID
	// ObjectID names a shared transactional object.
	ObjectID = proto.ObjectID
	// Value is the payload interface stored in objects.
	Value = proto.Value
	// ObjectCopy is a versioned object snapshot.
	ObjectCopy = proto.ObjectCopy
	// Txn is a (possibly nested) transaction handle.
	Txn = core.Txn
	// Runtime executes transactions for one node.
	Runtime = core.Runtime
	// Mode selects the nesting/checkpointing protocol.
	Mode = core.Mode
	// State is the program state of a step-structured transaction.
	State = core.State
	// Step is one unit of a step-structured transaction.
	Step = core.Step
	// Metrics aggregates client-side protocol counters.
	Metrics = core.Metrics
)

// Observability re-exports (see internal/obs and DESIGN.md §8): a Registry
// collects latency histograms by site and abort counters by cause; a Tracer
// retains a sampled ring of per-transaction events.
type (
	// Registry is the observability hub handed to runtimes via
	// ClusterConfig.Obs. The nil default records nothing at no cost.
	Registry = obs.Registry
	// Tracer is the ring-buffered transaction event trace.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// AbortCause classifies why a transaction attempt aborted.
	AbortCause = obs.AbortCause
	// ObsSnapshot is a serializable registry snapshot.
	ObsSnapshot = obs.Snapshot
	// SpanBuffer retains completed distributed-tracing spans per node.
	SpanBuffer = obs.SpanBuffer
	// Span is one completed span of a distributed trace.
	Span = proto.Span
	// TraceContext is the causal context piggybacked on wire requests.
	TraceContext = proto.TraceContext
	// CheckResult summarizes an obs.CheckTrace run.
	CheckResult = obs.CheckResult
)

// Introspection-plane re-exports (see internal/obs and DESIGN.md §13): the
// live registry also carries per-slot heat counters, per-commit critical-path
// phase decomposition, and an always-on streaming trace auditor.
type (
	// Auditor is the streaming trace auditor continuously running CheckTrace
	// invariants over a live span buffer.
	Auditor = obs.Auditor
	// AuditorConfig tunes the streaming auditor's poll/settle windows.
	AuditorConfig = obs.AuditorConfig
	// AuditStats is the auditor's counter snapshot.
	AuditStats = obs.AuditStats
	// HeatSnapshot is a copy of the per-slot access heat counters.
	HeatSnapshot = obs.HeatSnapshot
	// SlotHeat is one slot's row in ranked heat output.
	SlotHeat = obs.SlotHeat
	// PhaseBreakdown is one committed transaction's critical-path phase
	// decomposition.
	PhaseBreakdown = obs.PhaseBreakdown
	// PhaseDecomposition is the result of decomposing a span timeline.
	PhaseDecomposition = obs.PhaseDecomposition
)

// NewAuditor builds a streaming auditor over the registry's span buffer (see
// obs.NewAuditor); Start it, and Stop it at shutdown for a final flush.
func NewAuditor(reg *Registry, cfg AuditorConfig) *Auditor { return obs.NewAuditor(reg, cfg) }

// Open-loop load re-exports (see internal/load and DESIGN.md §14): a
// Generator offers transactions on a fixed arrival schedule regardless of
// completion, measuring latency from each arrival's *intended* time so
// saturation shows up as queueing/shedding instead of the coordinated
// omission of a closed loop.
type (
	// LoadConfig configures an open-loop Generator.
	LoadConfig = load.Config
	// LoadGenerator is the open-loop transaction generator.
	LoadGenerator = load.Generator
	// LoadStats is a completed run's accounting.
	LoadStats = load.Stats
	// LoadPoint is one timeline sample of a running generator.
	LoadPoint = load.Point
	// LoadSchedule selects the arrival process (Poisson or Uniform).
	LoadSchedule = load.Schedule
	// TxnFunc is the per-arrival transaction body a Generator drives.
	TxnFunc = load.TxnFunc
)

// Arrival schedules.
const (
	// Poisson draws exponential inter-arrival gaps (open-system model).
	Poisson = load.Poisson
	// Uniform spaces arrivals evenly at the target rate.
	Uniform = load.Uniform
)

// NewLoadGenerator builds an open-loop generator (see load.New).
func NewLoadGenerator(cfg LoadConfig) (*LoadGenerator, error) { return load.New(cfg) }

// ParseLoadSchedule parses "poisson" or "uniform" (see load.ParseSchedule).
func ParseLoadSchedule(name string) (LoadSchedule, error) { return load.ParseSchedule(name) }

// RegisterRuntimeGauges exports Go runtime health (goroutines, heap in use,
// GC pause p99) as registry gauges (see obs.RegisterRuntimeGauges). Opt-in:
// an untouched registry's Prometheus scrape stays byte-identical.
func RegisterRuntimeGauges(reg *Registry) { obs.RegisterRuntimeGauges(reg) }

// DecomposePhases stitches a span timeline into per-commit critical-path
// phase breakdowns (see obs.DecomposePhases).
func DecomposePhases(spans []Span) PhaseDecomposition { return obs.DecomposePhases(spans) }

// SummarizePhases folds phase breakdowns into per-phase distribution
// summaries (see obs.SummarizePhases).
func SummarizePhases(bds []PhaseBreakdown) map[string]obs.Stats { return obs.SummarizePhases(bds) }

// Sharding re-exports (see internal/proto/shard.go and DESIGN.md §12): the
// object space can be split into independent quorum groups behind a
// versioned placement map.
type (
	// ShardID identifies one quorum group of a sharded cluster.
	ShardID = proto.ShardID
	// ShardSpec is one shard's membership.
	ShardSpec = proto.ShardSpec
	// ShardMap is the versioned slot→shard placement map.
	ShardMap = proto.ShardMap
)

// NoShard is the sentinel "no shard" id.
const NoShard = proto.NoShard

// PartitionMap builds an initial shard map dealing the object slots
// round-robin over n contiguous node groups (see proto.PartitionMap).
func PartitionMap(nodes []NodeID, shards int) ShardMap {
	return proto.PartitionMap(nodes, shards)
}

// FetchShardMap bootstraps a client's placement map from the first of nodes
// that answers (see core.FetchShardMap).
func FetchShardMap(ctx context.Context, trans cluster.Transport, from NodeID, nodes []NodeID) (ShardMap, error) {
	return core.FetchShardMap(ctx, trans, from, nodes)
}

// NewRegistry returns an empty observability registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewSpanBuffer builds a span ring for distributed tracing; attach it with
// Registry.WithSpans before building runtimes/clusters.
func NewSpanBuffer(size int) *SpanBuffer { return obs.NewSpanBuffer(size) }

// MergeSpans merges per-node span dumps into one timeline (see obs.MergeSpans).
func MergeSpans(dumps ...[]Span) []Span { return obs.MergeSpans(dumps...) }

// CheckTrace verifies protocol invariants over a merged span timeline (see
// obs.CheckTrace).
func CheckTrace(spans []Span) CheckResult { return obs.CheckTrace(spans) }

// CollectTrace gathers spans from every given replica node via the
// transport's TraceDumpReq plus any extra local dumps (e.g. the caller's own
// span buffer), merged and deduplicated. Nodes that fail to answer are
// skipped: a partially collected trace is still useful, and CheckTrace
// counts broken causal chains as incomplete rather than failing them.
func CollectTrace(ctx context.Context, trans cluster.Transport, from NodeID, nodes []NodeID, local ...[]Span) []Span {
	dumps := append([][]Span{}, local...)
	for _, n := range nodes {
		resp, err := trans.Call(ctx, from, n, proto.TraceDumpReq{})
		if err != nil {
			continue
		}
		if rep, ok := resp.(proto.TraceDumpRep); ok {
			dumps = append(dumps, rep.Spans)
		}
	}
	return obs.MergeSpans(dumps...)
}

// NewTracer builds a transaction tracer (see obs.NewTracer).
func NewTracer(size, sampleEvery int, logger *slog.Logger) *Tracer {
	return obs.NewTracer(size, sampleEvery, logger)
}

// Abort causes.
const (
	// CauseReadValidation: read-quorum validation found a stale footprint.
	CauseReadValidation = obs.CauseReadValidation
	// CauseLockDenied: a pending commit's locks denied the read.
	CauseLockDenied = obs.CauseLockDenied
	// CauseCommitConflict: a write-quorum member voted no at prepare.
	CauseCommitConflict = obs.CauseCommitConflict
	// CauseNodeDown: a quorum member was unreachable.
	CauseNodeDown = obs.CauseNodeDown
	// CauseWrongShard: a commit participant's shard no longer homed part of
	// the footprint (stale map or migration fence).
	CauseWrongShard = obs.CauseWrongShard
)

// AbortCauses lists all abort causes in presentation order.
var AbortCauses = obs.Causes

// Protocol modes.
const (
	// Flat is baseline QR: flat nesting, commit-time validation.
	Flat = core.Flat
	// FlatRqv is flat nesting with incremental read validation (ablation).
	FlatRqv = core.FlatRqv
	// Closed is QR-CN: closed nesting with local subtransaction commits.
	Closed = core.Closed
	// Checkpoint is QR-CHK: automatic checkpoints with partial rollback.
	Checkpoint = core.Checkpoint
)

// Scalar payloads, re-exported for convenience.
type (
	// Int64 is a scalar integer payload.
	Int64 = proto.Int64
	// String is a scalar string payload.
	String = proto.String
	// Int64Slice is an integer-slice payload.
	Int64Slice = proto.Int64Slice
)

// RegisterValue registers a Value implementation for the TCP transport.
func RegisterValue(v Value) { proto.RegisterValue(v) }

// Real-TCP deployment re-exports (see internal/cluster and DESIGN.md §11):
// ListenTCP serves a replica, NewTCPTransport connects a client to the
// cluster. By default the transport speaks the pipelined binary wire
// protocol (many concurrent calls multiplexed over one connection per
// peer); WithLegacyWire reverts it to the original one-call-at-a-time gob
// loop for A/B comparison. Servers answer both protocols, sniffing each
// connection's first byte.
type (
	// TCPTransport is the client side of a real TCP deployment.
	TCPTransport = cluster.TCPTransport
	// TCPServer serves one replica's handler over TCP.
	TCPServer = cluster.TCPServer
	// TCPOption configures NewTCPTransport.
	TCPOption = cluster.TCPOption
)

// NewTCPTransport connects to the peers (node id → address); opts tune the
// wire protocol (WithLegacyWire) and dialing (WithDialTimeout).
func NewTCPTransport(peers map[NodeID]string, opts ...TCPOption) *TCPTransport {
	return cluster.NewTCPTransport(peers, opts...)
}

// WithLegacyWire makes the transport speak the pre-pipelining gob protocol.
func WithLegacyWire() TCPOption { return cluster.WithLegacyWire() }

// WithDialTimeout bounds connection establishment (the caller's context
// still applies; the shorter of the two wins).
func WithDialTimeout(d time.Duration) TCPOption { return cluster.WithDialTimeout(d) }

// ListenTCP starts a TCP server for node id on addr ("host:0" picks a free
// port) serving h — typically a replica's Handle method.
func ListenTCP(id NodeID, addr string, h func(from NodeID, req any) any) (*TCPServer, error) {
	return cluster.ListenTCP(id, addr, h)
}

// Composition sentinels (see Txn.OrElse and Txn.Open).
var (
	// ErrBranchFailed makes an OrElse branch fall through to the next.
	ErrBranchFailed = core.ErrBranchFailed
	// ErrNeedsClosedNesting reports OrElse used outside Closed mode.
	ErrNeedsClosedNesting = core.ErrNeedsClosedNesting
	// ErrOpenInCheckpointed reports Txn.Open used in Checkpoint mode.
	ErrOpenInCheckpointed = core.ErrOpenInCheckpointed
)

// ClusterConfig describes a simulated QR-DTM cluster.
type ClusterConfig struct {
	// Nodes is the replica count (default 13 — a full 3-level ternary
	// tree, the paper's running example).
	Nodes int
	// Mode selects the protocol for all runtimes (default Flat).
	Mode Mode
	// Latency is the simulated network latency model (default zero). The
	// simulator sleeps, so configure delays at millisecond scale — the
	// platform sleep quantum is the effective resolution.
	Latency cluster.LatencyModel
	// TxTime serializes each node's outgoing messages with the given
	// per-message transmission delay, making quorum multicasts cost
	// proportionally more than unicasts (default 0).
	TxTime time.Duration
	// ServiceTime serializes each replica's request processing with the
	// given per-request cost, modelling bounded node capacity (default 0).
	ServiceTime time.Duration
	// CheckpointEvery is the QR-CHK footprint threshold (default 2).
	CheckpointEvery int
	// CheckpointCost is the simulated per-checkpoint state-capture cost
	// (default 0; see core.Config.CheckpointCost).
	CheckpointCost time.Duration
	// SpreadQuorums gives each node a different (but valid) read quorum,
	// spreading read load across the tree. The default assigns everyone
	// the canonical quorum, as in the paper's main experiments.
	SpreadQuorums bool
	// Shards splits the object space into that many independent quorum
	// groups: the nodes are dealt into contiguous groups, each running its
	// own (smaller) quorum tree, and a versioned shard map routes every
	// object to its group. Cross-shard transactions commit via 2PC over the
	// union of the touched shards' write quorums. 0 or 1 (the default) is
	// the classic single-tree cluster.
	Shards int
	// MaxRetries bounds attempts per transaction (0 = unlimited).
	MaxRetries int
	// LockWaitRetries is the contention-manager policy for lock-only read
	// denials (see core.Config.LockWaitRetries; default 0 = paper policy).
	LockWaitRetries int
	// LegacyReads reverts runtimes to per-object read rounds carrying the
	// full footprint (see core.Config.LegacyReads; default off = batched
	// reads with delta-Rqv).
	LegacyReads bool
	// BackoffBase/BackoffMax tune full-abort backoff (see core.Config).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Obs, when set, collects latency histograms, abort-cause counters and
	// (with an attached Tracer) per-transaction events from every runtime of
	// the cluster. The nil default records nothing at no hot-path cost.
	Obs *Registry
	// WrapTransport, when set, decorates the transport the runtimes issue
	// calls through (e.g. cluster.NewFaultTransport for message-level fault
	// injection, cluster.NewRetryTransport for transient-fault masking).
	// Cluster.Transport remains the underlying MemTransport, so crash
	// injection (Fail/Recover/Down) and message accounting are unaffected.
	WrapTransport func(cluster.Transport) cluster.Transport
}

// Cluster is a simulated QR-DTM deployment: replicas, transport, quorum
// system, and per-node transaction runtimes sharing one metrics block.
type Cluster struct {
	Transport *cluster.MemTransport
	Tree      *quorum.Tree
	Replicas  []*server.Replica

	cfg       ClusterConfig
	metrics   *core.Metrics
	ids       *core.IDGen
	provider  core.QuorumProvider
	callTrans cluster.Transport // transport runtimes call through (possibly decorated)

	mu       sync.Mutex
	runtimes map[NodeID]*Runtime

	// smap is the live placement map of a sharded cluster (zero when
	// unsharded). Guarded by its own lock: runtimes re-read it through the
	// provider closure while refreshAll holds mu.
	smapMu sync.RWMutex
	smap   proto.ShardMap
}

// NewCluster builds and wires a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 13
	}
	var opts []cluster.MemOption
	if cfg.Latency != nil {
		opts = append(opts, cluster.WithLatency(cfg.Latency))
	}
	if cfg.TxTime > 0 {
		opts = append(opts, cluster.WithTxTime(cfg.TxTime))
	}
	if cfg.ServiceTime > 0 {
		opts = append(opts, cluster.WithServiceTime(cfg.ServiceTime))
	}
	t := cluster.NewMemTransport(opts...)
	c := &Cluster{
		Transport: t,
		Tree:      quorum.NewTree(cfg.Nodes),
		cfg:       cfg,
		metrics:   &core.Metrics{},
		ids:       core.NewIDGen(),
		runtimes:  make(map[NodeID]*Runtime),
	}
	for i := 0; i < cfg.Nodes; i++ {
		// Replicas share the cluster registry, so serve-side spans (and
		// service-time histograms) land in the same buffer as the client
		// side's; Span.Node keeps the per-replica attribution.
		r := server.New(NodeID(i)).WithObs(cfg.Obs)
		c.Replicas = append(c.Replicas, r)
		t.Register(NodeID(i), r.Handle)
	}
	c.callTrans = cluster.Transport(t)
	if cfg.WrapTransport != nil {
		c.callTrans = cfg.WrapTransport(c.callTrans)
	}
	if cfg.Shards > 1 {
		ids := make([]NodeID, cfg.Nodes)
		for i := range ids {
			ids[i] = NodeID(i)
		}
		m := proto.PartitionMap(ids, cfg.Shards)
		if !m.Sharded() {
			return nil, fmt.Errorf("qrdtm: cannot partition %d nodes into %d shards", cfg.Nodes, cfg.Shards)
		}
		c.smap = m
		for _, r := range c.Replicas {
			r.SetShardMap(m)
		}
	}
	return c, nil
}

// Sharded reports whether the cluster routes through a shard map.
func (c *Cluster) Sharded() bool {
	c.smapMu.RLock()
	defer c.smapMu.RUnlock()
	return c.smap.Sharded()
}

// ShardMap returns a copy of the cluster's live placement map (zero when
// unsharded).
func (c *Cluster) ShardMap() ShardMap {
	c.smapMu.RLock()
	defer c.smapMu.RUnlock()
	return c.smap.Clone()
}

// setShardMap swings the live map (reconfiguration commit point for new
// runtimes and shard-aware helpers).
func (c *Cluster) setShardMap(m ShardMap) {
	c.smapMu.Lock()
	c.smap = m
	c.smapMu.Unlock()
}

// quorumProvider returns the provider runtimes are built against.
func (c *Cluster) quorumProvider() core.QuorumProvider {
	if c.provider != nil {
		return c.provider
	}
	var choice func(NodeID) int
	if c.cfg.SpreadQuorums {
		choice = func(n NodeID) int { return int(n) }
	}
	return core.TreeQuorums{
		Tree:   c.Tree,
		Alive:  func(n NodeID) bool { return !c.Transport.Down(n) },
		Choice: choice,
	}
}

// shardProvider returns the placement provider of a sharded cluster: one
// independent quorum tree per shard, resolved against the cluster's live map
// so a refresh after AddShard sees the new placement.
func (c *Cluster) shardProvider() core.ShardProvider {
	var choice func(NodeID) int
	if c.cfg.SpreadQuorums {
		choice = func(n NodeID) int { return int(n) }
	}
	return core.TreeShardQuorums{
		Map:    func() (ShardMap, error) { return c.ShardMap(), nil },
		Alive:  func(n NodeID) bool { return !c.Transport.Down(n) },
		Choice: choice,
	}
}

// SetQuorumProvider overrides how runtimes obtain their quorums (e.g. the
// failure-adaptive spread quorums of the Figure 10 experiment). It must be
// called before the first Runtime for a node is built; existing runtimes
// keep their provider.
func (c *Cluster) SetQuorumProvider(p core.QuorumProvider) { c.provider = p }

// Runtime returns (building on first use) the transaction runtime hosted on
// the given node. All runtimes share the cluster's metrics and ID space.
// Safe for concurrent use.
func (c *Cluster) Runtime(node NodeID) *Runtime {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rt, ok := c.runtimes[node]; ok {
		return rt
	}
	cfg := core.Config{
		Node:            node,
		Transport:       c.callTrans,
		Mode:            c.cfg.Mode,
		IDs:             c.ids,
		Metrics:         c.metrics,
		CheckpointEvery: c.cfg.CheckpointEvery,
		CheckpointCost:  c.cfg.CheckpointCost,
		BackoffBase:     c.cfg.BackoffBase,
		BackoffMax:      c.cfg.BackoffMax,
		MaxRetries:      c.cfg.MaxRetries,
		LockWaitRetries: c.cfg.LockWaitRetries,
		LegacyReads:     c.cfg.LegacyReads,
		Obs:             c.cfg.Obs,
	}
	if c.Sharded() {
		cfg.Shards = c.shardProvider()
	} else {
		cfg.Quorums = c.quorumProvider()
	}
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		// Runtime construction only fails when no quorum exists, which on
		// a fresh cluster is a configuration bug.
		panic(fmt.Sprintf("qrdtm: building runtime for %v: %v", node, err))
	}
	c.runtimes[node] = rt
	return rt
}

// Metrics returns the cluster-wide client metrics.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Load installs objects for bootstrap/population: on every replica when
// unsharded, and only on the owning shard's members when sharded (a copy on
// a non-owner would sit frozen and trip the disowned-copy advisory on every
// footprint that mentions it). It bypasses concurrency control and must not
// race with running transactions.
func (c *Cluster) Load(copies []ObjectCopy) {
	m := c.ShardMap()
	if !m.Sharded() {
		for _, r := range c.Replicas {
			r.Store().Load(copies)
		}
		return
	}
	byShard := make(map[ShardID][]ObjectCopy)
	for _, cp := range copies {
		s := m.ShardFor(cp.ID)
		byShard[s] = append(byShard[s], cp)
	}
	for s, part := range byShard {
		spec, ok := m.Shard(s)
		if !ok {
			continue
		}
		for _, n := range spec.Members {
			c.Replicas[n].Store().Load(part)
		}
	}
}

// LoadKV is Load for a simple id→value map, installed at version 1.
func (c *Cluster) LoadKV(objs map[ObjectID]Value) {
	copies := make([]ObjectCopy, 0, len(objs))
	for id, v := range objs {
		copies = append(copies, ObjectCopy{ID: id, Version: 1, Val: v})
	}
	c.Load(copies)
}

// Fail crashes a node and reconfigures every existing runtime's quorums.
// It returns an error if the failure leaves the cluster without quorums.
func (c *Cluster) Fail(node NodeID) error {
	c.Transport.Fail(node)
	return c.refreshAll()
}

// Recover restarts a crashed node after synchronizing its store from a live
// read quorum, so the crash-stop safety argument is preserved: the node
// rejoins holding the latest committed version of every object it serves.
//
// Ordering matters here. A write quorum chosen while the node was down does
// not contain it, so a commit racing the sync can decide a version the sync
// snapshot missed — and once the node resumes serving (as the canonical read
// quorum, say), every later transaction reads the stale version and wedges
// at prepare against the newer copies. Recovery therefore rejoins the node
// and refreshes quorums FIRST (new commits now include it in their write
// quorums), then re-syncs non-regressively from a read quorum that excludes
// it, repeating until a pass installs nothing and no sync-quorum member
// holds an in-flight prepare — at which point every commit that could have
// bypassed the node has landed and been copied over.
// In a sharded cluster the sync draws from the node's own shard: its members
// are the only replicas that (should) hold the node's objects, so the
// explicit member set replaces the whole-cluster tree quorum.
func (c *Cluster) Recover(ctx context.Context, node NodeID) error {
	alive := func(n NodeID) bool { return !c.Transport.Down(n) && n != node }
	if err := ctx.Err(); err != nil {
		return err
	}
	// A restarting node holds no locks: any protection it granted predates
	// its crash, and those transactions decided without it while it was down.
	// Dropping them prevents a resurrected lock from denying every future
	// prepare on this member.
	c.Replicas[node].Store().DropLocks()
	// First pass before rejoining: bring the node near-current so the window
	// where it serves reads while behind is as short as possible.
	if _, err := c.syncFromQuorum(node, alive); err != nil {
		return err
	}
	c.Transport.Recover(node)
	if err := c.refreshAll(); err != nil {
		return err
	}
	// Stabilization: commits in flight across the rejoin used write quorums
	// without the node. Each such commit either already decided (the next
	// pass copies its version) or still holds prepare locks on the sync
	// quorum (AnyProtected keeps the loop alive). Bounded so a busy cluster
	// cannot pin recovery forever; the bound is generous against the ~one
	// round-trip the straddling window actually lasts.
	for pass := 0; pass < 16; pass++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		installed, err := c.syncFromQuorum(node, alive)
		if err != nil {
			return err
		}
		pending := false
		if rq, err := c.syncQuorum(node, alive); err == nil {
			for _, n := range rq {
				if c.Replicas[n].Store().AnyProtected() {
					pending = true
					break
				}
			}
		}
		if installed == 0 && !pending {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// syncFromQuorum installs on node the newest committed copy of every object
// held by a read quorum over alive (which excludes node itself). A read
// quorum collectively holds the latest committed version of every object,
// so recovery is a store-to-store sync from its members; InstallNewer makes
// the sync monotone so it can never clobber a version a racing commit
// decision already installed on the node.
func (c *Cluster) syncFromQuorum(node NodeID, alive func(NodeID) bool) (int, error) {
	rq, err := c.syncQuorum(node, alive)
	if err != nil {
		return 0, err
	}
	latest := make(map[ObjectID]ObjectCopy)
	for _, n := range rq {
		for _, cp := range c.Replicas[n].Store().DumpAll() {
			if cur, ok := latest[cp.ID]; !ok || cp.Version > cur.Version {
				latest[cp.ID] = cp
			}
		}
	}
	copies := make([]ObjectCopy, 0, len(latest))
	for _, cp := range latest {
		copies = append(copies, cp)
	}
	return c.Replicas[node].Store().InstallNewer(copies), nil
}

// syncQuorum picks the member set a recovering node syncs from: the whole
// cluster's tree quorum when unsharded, the node's own shard's group quorum
// when sharded (explicit members — other shards neither hold nor need its
// objects). A sharded node belonging to no shard syncs from nobody.
func (c *Cluster) syncQuorum(node NodeID, alive func(NodeID) bool) ([]NodeID, error) {
	m := c.ShardMap()
	if !m.Sharded() {
		return c.Tree.ReadQuorum(alive)
	}
	for _, spec := range m.Shards {
		for _, n := range spec.Members {
			if n == node {
				return quorum.NewGroup(spec.Members).ReadQuorum(alive)
			}
		}
	}
	return nil, nil
}

func (c *Cluster) refreshAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rt := range c.runtimes {
		if err := rt.RefreshQuorums(); err != nil {
			return err
		}
	}
	return nil
}

// ReadCommitted returns the globally latest committed copy of id, resolved
// through a read quorum (tooling, tests and examples; not transactional). In
// a sharded cluster the quorum is the owning shard's — its explicit member
// set, not the whole-cluster tree.
func (c *Cluster) ReadCommitted(ctx context.Context, id ObjectID) (ObjectCopy, error) {
	if err := ctx.Err(); err != nil {
		return ObjectCopy{}, err
	}
	alive := func(n NodeID) bool { return !c.Transport.Down(n) }
	var rq []NodeID
	var err error
	if m := c.ShardMap(); m.Sharded() {
		spec, ok := m.Shard(m.ShardFor(id))
		if !ok {
			return ObjectCopy{}, fmt.Errorf("qrdtm: object %s maps to an unknown shard", id)
		}
		rq, err = quorum.NewGroup(spec.Members).ReadQuorum(alive)
	} else {
		rq, err = c.Tree.ReadQuorum(alive)
	}
	if err != nil {
		return ObjectCopy{}, err
	}
	best := ObjectCopy{ID: id}
	for _, n := range rq {
		cp, ok := c.Replicas[n].Store().Get(id)
		if ok && cp.Version >= best.Version {
			best = cp
		}
	}
	return best, nil
}

// AddShard reconfigures a live sharded cluster online: it carves the given
// slots out of their current shards and moves them — traffic still flowing —
// to a shard with the given members, which may be brand new (id ==
// len(ShardMap().Shards)) or an existing shard being rebalanced onto. The
// two-epoch migration protocol (fence, drain, flip; see core.Reshard and
// DESIGN.md §12) guarantees no committed write is lost and no transaction
// observes the move except as WrongShard retries. On success every runtime's
// quorums are refreshed against the new map.
func (c *Cluster) AddShard(ctx context.Context, id ShardID, members []NodeID, slots []int) error {
	cur := c.ShardMap()
	if !cur.Sharded() {
		return fmt.Errorf("qrdtm: AddShard requires a sharded cluster (ClusterConfig.Shards > 1)")
	}
	all := make([]NodeID, len(c.Replicas))
	for i := range c.Replicas {
		all[i] = NodeID(i)
	}
	spec := ShardSpec{ID: id, Members: members}
	// The sim transport only uses `from` for latency/tx-time attribution;
	// node 0 stands in for the (external) reconfiguration controller.
	final, err := core.Reshard(ctx, c.Transport, 0, all, cur, spec, slots)
	if err != nil {
		return err
	}
	c.setShardMap(final)
	return c.refreshAll()
}
