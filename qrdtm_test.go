package qrdtm_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qrdtm"
	"qrdtm/internal/dtm"
	"qrdtm/internal/proto"
)

func TestClusterDefaults(t *testing.T) {
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Replicas) != 13 {
		t.Fatalf("default nodes = %d, want 13", len(c.Replicas))
	}
	if c.Tree.Len() != 13 {
		t.Fatalf("tree size = %d", c.Tree.Len())
	}
}

func TestClusterLoadAndReadCommitted(t *testing.T) {
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadKV(map[qrdtm.ObjectID]qrdtm.Value{"k": qrdtm.Int64(7)})
	cp, err := c.ReadCommitted(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != 1 || cp.Val.(qrdtm.Int64) != 7 {
		t.Fatalf("committed = %+v", cp)
	}
}

func TestClusterRuntimeCachedPerNode(t *testing.T) {
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Runtime(2) != c.Runtime(2) {
		t.Fatal("Runtime must be cached per node")
	}
	if c.Runtime(1) == c.Runtime(2) {
		t.Fatal("distinct nodes must get distinct runtimes")
	}
}

func TestClusterFailRecoverCycle(t *testing.T) {
	ctx := context.Background()
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 13, Mode: qrdtm.Closed})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadKV(map[qrdtm.ObjectID]qrdtm.Value{"n": qrdtm.Int64(0)})
	rt := c.Runtime(5)

	inc := func() error {
		return rt.Atomic(ctx, func(tx *qrdtm.Txn) error {
			v, err := tx.Read("n")
			if err != nil {
				return err
			}
			return tx.Write("n", v.(qrdtm.Int64)+1)
		})
	}

	if err := inc(); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := inc(); err != nil {
		t.Fatalf("increment with root down: %v", err)
	}
	// The crashed root missed the second commit; recovery must sync it.
	if err := c.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Replicas[0].Store().Get("n")
	if !ok || got.Val.(qrdtm.Int64) != 2 {
		t.Fatalf("recovered replica state = %+v ok=%v (recovery must state-sync)", got, ok)
	}
	if err := inc(); err != nil {
		t.Fatal(err)
	}
	cp, err := c.ReadCommitted(ctx, "n")
	if err != nil || cp.Val.(qrdtm.Int64) != 3 {
		t.Fatalf("final = %+v err=%v", cp, err)
	}
}

func TestClusterFailTooManyNodes(t *testing.T) {
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Runtime(3) // force a runtime to exist so refresh has something to do
	_ = c.Fail(0)
	_ = c.Fail(1)
	if err := c.Fail(2); err == nil {
		t.Fatal("expected quorum unavailability after losing 3 of 4 nodes")
	}
}

func TestDTMAdapter(t *testing.T) {
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: 4, Mode: qrdtm.Flat})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadKV(map[qrdtm.ObjectID]qrdtm.Value{"a": qrdtm.Int64(1)})
	sys := dtm.FromRuntime(c.Runtime(0))
	if sys.Name() == "" {
		t.Fatal("empty system name")
	}
	err = sys.Atomic(context.Background(), func(tx dtm.Tx) error {
		v, err := tx.Read("a")
		if err != nil {
			return err
		}
		return tx.Write("a", proto.Int64(int64(v.(proto.Int64))*10))
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := c.ReadCommitted(context.Background(), "a")
	if cp.Val.(qrdtm.Int64) != 10 {
		t.Fatalf("a = %v", cp.Val)
	}
}

// TestFailureStormConservation crashes and recovers replicas *while*
// transfer transactions run, then checks that no committed money was lost
// — the end-to-end fault-tolerance claim under the crash-stop model with
// state-sync recovery.
func TestFailureStormConservation(t *testing.T) {
	const accounts, clients, txns, initial = 12, 4, 15, 1000
	ctx := context.Background()
	// Nonzero transmission cost slows transactions enough that crashes and
	// recoveries genuinely interleave with reads, prepares and decides.
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{
		Nodes:      13,
		Mode:       qrdtm.Closed,
		TxTime:     time.Millisecond,
		MaxRetries: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	kv := map[qrdtm.ObjectID]qrdtm.Value{}
	for i := 0; i < accounts; i++ {
		kv[qrdtm.ObjectID(fmt.Sprintf("s/%d", i))] = qrdtm.Int64(initial)
	}
	c.LoadKV(kv)

	var clients_wg sync.WaitGroup
	stop := make(chan struct{})
	injectorDone := make(chan struct{})

	// Failure injector: cycles crash/recover over non-root replicas. The
	// root (node 0) stays up so canonical quorums remain cheap; leaves and
	// mid-tree nodes churn.
	go func() {
		defer close(injectorDone)
		victims := []qrdtm.NodeID{4, 7, 10, 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := victims[i%len(victims)]
			if err := c.Fail(v); err != nil {
				continue // quorum would break; skip this round
			}
			time.Sleep(2 * time.Millisecond)
			if err := c.Recover(ctx, v); err != nil {
				t.Errorf("recover %v: %v", v, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for cl := 0; cl < clients; cl++ {
		clients_wg.Add(1)
		go func(cl int) {
			defer clients_wg.Done()
			rt := c.Runtime(qrdtm.NodeID(1 + cl*3%12))
			for i := 0; i < txns; i++ {
				from := qrdtm.ObjectID(fmt.Sprintf("s/%d", (cl*5+i)%accounts))
				to := qrdtm.ObjectID(fmt.Sprintf("s/%d", (cl*7+i+1)%accounts))
				if from == to {
					continue
				}
				err := rt.Atomic(ctx, func(tx *qrdtm.Txn) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, fv.(qrdtm.Int64)-1); err != nil {
						return err
					}
					return tx.Write(to, tv.(qrdtm.Int64)+1)
				})
				if err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
			}
		}(cl)
	}

	// Let the clients finish under churn, then stop the injector.
	clients_wg.Wait()
	close(stop)
	<-injectorDone

	total := int64(0)
	for i := 0; i < accounts; i++ {
		cp, err := c.ReadCommitted(ctx, qrdtm.ObjectID(fmt.Sprintf("s/%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(cp.Val.(qrdtm.Int64))
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (committed writes lost under failures)", total, accounts*initial)
	}
}
