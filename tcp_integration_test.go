// End-to-end integration over real TCP: a multi-listener QR-DTM cluster on
// localhost, exercised by the full transaction engine (reads with Rqv,
// closed nesting, two-phase commit) — evidence the protocols are not bound
// to the in-memory simulator.
package qrdtm_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"qrdtm/internal/cluster"
	"qrdtm/internal/core"
	"qrdtm/internal/obs"
	"qrdtm/internal/proto"
	"qrdtm/internal/quorum"
	"qrdtm/internal/server"
)

// tcpCluster is a real-TCP test deployment.
type tcpCluster struct {
	replicas []*server.Replica
	servers  []*cluster.TCPServer
	trans    *cluster.TCPTransport
	tree     *quorum.Tree
}

func startTCPCluster(t *testing.T, n int) *tcpCluster {
	t.Helper()
	tc := &tcpCluster{tree: quorum.NewTree(n)}
	peers := make(map[proto.NodeID]string, n)
	for i := 0; i < n; i++ {
		rep := server.New(proto.NodeID(i))
		srv, err := cluster.ListenTCP(proto.NodeID(i), "127.0.0.1:0", rep.Handle)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		tc.replicas = append(tc.replicas, rep)
		tc.servers = append(tc.servers, srv)
		peers[proto.NodeID(i)] = srv.Addr()
	}
	tc.trans = cluster.NewTCPTransport(peers)
	t.Cleanup(func() {
		tc.trans.Close()
		for _, s := range tc.servers {
			_ = s.Close()
		}
	})
	return tc
}

func (tc *tcpCluster) runtime(t *testing.T, node proto.NodeID, mode core.Mode, ids *core.IDGen, m *core.Metrics) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Node:      node,
		Transport: tc.trans,
		Quorums:   core.TreeQuorums{Tree: tc.tree},
		Mode:      mode,
		IDs:       ids,
		Metrics:   m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func (tc *tcpCluster) load(copies []proto.ObjectCopy) {
	for _, r := range tc.replicas {
		r.Store().Load(copies)
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	tc := startTCPCluster(t, 4)
	tc.load([]proto.ObjectCopy{
		{ID: "x", Version: 1, Val: proto.Int64(1)},
		{ID: "y", Version: 1, Val: proto.Int64(2)},
	})
	ids := core.NewIDGen()
	metrics := &core.Metrics{}
	rt := tc.runtime(t, 0, core.Closed, ids, metrics)

	ctx := context.Background()
	err := rt.Atomic(ctx, func(tx *core.Txn) error {
		xv, err := tx.Read("x")
		if err != nil {
			return err
		}
		return tx.Nested(func(ct *core.Txn) error {
			yv, err := ct.Read("y")
			if err != nil {
				return err
			}
			return ct.Write("y", proto.Int64(int64(xv.(proto.Int64))+int64(yv.(proto.Int64))))
		})
	})
	if err != nil {
		t.Fatalf("Atomic over TCP: %v", err)
	}

	// Every write-quorum member must hold the committed value.
	wq, err := tc.tree.WriteQuorum(quorum.AllAlive)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range wq {
		got, ok := tc.replicas[n].Store().Get("y")
		if !ok || got.Version != 2 || got.Val.(proto.Int64) != 3 {
			t.Fatalf("replica %v: %+v ok=%v", n, got, ok)
		}
	}
	if metrics.CTCommits.Load() != 1 {
		t.Fatalf("CT commits = %d", metrics.CTCommits.Load())
	}
}

func TestTCPClusterConcurrentTransfers(t *testing.T) {
	const accounts, clients, txns = 8, 3, 15
	tc := startTCPCluster(t, 4)
	var copies []proto.ObjectCopy
	for i := 0; i < accounts; i++ {
		copies = append(copies, proto.ObjectCopy{
			ID: proto.ObjectID(fmt.Sprintf("acct/%d", i)), Version: 1, Val: proto.Int64(100),
		})
	}
	tc.load(copies)

	ids := core.NewIDGen()
	metrics := &core.Metrics{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rt := tc.runtime(t, proto.NodeID(c%4), core.Flat, ids, metrics)
			for i := 0; i < txns; i++ {
				from := proto.ObjectID(fmt.Sprintf("acct/%d", (c*3+i)%accounts))
				to := proto.ObjectID(fmt.Sprintf("acct/%d", (c*5+i+1)%accounts))
				if from == to {
					continue
				}
				err := rt.Atomic(context.Background(), func(tx *core.Txn) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, proto.Int64(int64(fv.(proto.Int64))-1)); err != nil {
						return err
					}
					return tx.Write(to, proto.Int64(int64(tv.(proto.Int64))+1))
				})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Conservation, resolved through a read quorum.
	rq, err := tc.tree.ReadQuorum(quorum.AllAlive)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < accounts; i++ {
		var best proto.ObjectCopy
		for _, n := range rq {
			cp, ok := tc.replicas[n].Store().Get(proto.ObjectID(fmt.Sprintf("acct/%d", i)))
			if ok && cp.Version >= best.Version {
				best = cp
			}
		}
		total += int64(best.Val.(proto.Int64))
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
}

func TestTCPClusterCheckpointedSteps(t *testing.T) {
	tc := startTCPCluster(t, 4)
	tc.load([]proto.ObjectCopy{
		{ID: "a", Version: 1, Val: proto.Int64(5)},
		{ID: "b", Version: 1, Val: proto.Int64(6)},
	})
	rt, err := core.NewRuntime(core.Config{
		Node:      1,
		Transport: tc.trans,
		Quorums:   core.TreeQuorums{Tree: tc.tree},
		Mode:      core.Checkpoint, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.AtomicSteps(context.Background(), &tcpState{}, []core.Step{
		func(tx *core.Txn, s core.State) error {
			v, err := tx.Read("a")
			if err != nil {
				return err
			}
			s.(*tcpState).A = int64(v.(proto.Int64))
			return nil
		},
		func(tx *core.Txn, s core.State) error {
			v, err := tx.Read("b")
			if err != nil {
				return err
			}
			s.(*tcpState).B = int64(v.(proto.Int64))
			return tx.Write("sum", proto.Int64(s.(*tcpState).A+s.(*tcpState).B))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*tcpState); got.A != 5 || got.B != 6 {
		t.Fatalf("state = %+v", got)
	}
}

type tcpState struct{ A, B int64 }

func (s *tcpState) CloneState() core.State { out := *s; return &out }

// TestTCPReplicaRestartWithRetry is the acceptance scenario for the cluster
// robustness layer: a write-quorum replica is killed and restarted mid-
// workload. With RetryTransport masking the transient connection faults, the
// run commits every transaction with zero spurious ErrNodeDown-driven full
// aborts and zero quorum reconfigurations during the restart window, and the
// transport stats report the retries that absorbed the outage.
func TestTCPReplicaRestartWithRetry(t *testing.T) {
	const txns = 30
	tc := startTCPCluster(t, 4)
	tc.load([]proto.ObjectCopy{{ID: "ctr", Version: 1, Val: proto.Int64(0)}})

	trans := cluster.NewRetryTransport(tc.trans, cluster.RetryPolicy{
		MaxAttempts: 10,
		CallTimeout: time.Second,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	})
	metrics := &core.Metrics{}
	reg := obs.NewRegistry()
	rt, err := core.NewRuntime(core.Config{
		Node:      0,
		Transport: trans,
		Quorums:   core.TreeQuorums{Tree: tc.tree},
		Mode:      core.Closed,
		Metrics:   metrics,
		Obs:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Node 1 is a member of the canonical write quorum for 4 nodes; its
	// outage stalls every prepare/decide round until retries ride it out.
	victim := proto.NodeID(1)
	addr := tc.servers[victim].Addr()

	restartErr := make(chan error, 1)
	ctx := context.Background()
	for i := 0; i < txns; i++ {
		if i == 5 {
			// Kill the victim between transactions; the restart lands while
			// the remaining transactions are still running, so their calls
			// must ride out refused dials and reset pooled connections.
			if err := tc.servers[victim].Close(); err != nil {
				t.Fatalf("closing victim: %v", err)
			}
			go func() {
				time.Sleep(150 * time.Millisecond) // the restart window
				srv, err := cluster.ListenTCP(victim, addr, tc.replicas[victim].Handle)
				if err != nil {
					restartErr <- fmt.Errorf("restarting victim: %w", err)
					return
				}
				tc.servers[victim] = srv // cleanup closes the new server
				restartErr <- nil
			}()
		}
		err := rt.Atomic(ctx, func(tx *core.Txn) error {
			v, err := tx.Read("ctr")
			if err != nil {
				return err
			}
			return tx.Write("ctr", v.(proto.Int64)+1)
		})
		if err != nil {
			t.Fatalf("txn %d failed across the restart window: %v", i, err)
		}
	}
	if err := <-restartErr; err != nil {
		t.Fatal(err)
	}

	if got := metrics.Commits.Load(); got != txns {
		t.Fatalf("commits = %d, want %d", got, txns)
	}
	// A single client has no contention: any full abort would be a spurious
	// ErrNodeDown-driven one, and any quorum refresh means the restart was
	// treated as a crash instead of a transient outage.
	if got := metrics.RootAborts.Load(); got != 0 {
		t.Fatalf("spurious full aborts during restart window: %d", got)
	}
	if got := metrics.QuorumRefreshes.Load(); got != 0 {
		t.Fatalf("quorum refreshes during restart window: %d", got)
	}
	if st := trans.Stats(); st.Retries == 0 {
		t.Fatal("expected transport retries to have absorbed the outage")
	}

	// The committed counter must equal the transaction count on every
	// write-quorum member, the restarted victim included.
	wq, err := tc.tree.WriteQuorum(quorum.AllAlive)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range wq {
		got, ok := tc.replicas[n].Store().Get("ctr")
		if !ok || got.Val.(proto.Int64) != txns {
			t.Fatalf("replica %v: ctr = %+v ok=%v, want %d", n, got, ok, txns)
		}
	}

	// The same evidence must be visible from the outside: stand up the admin
	// surface a qr-node client would serve (-admin) and read the restart's
	// footprint back over HTTP.
	admin := obs.NewAdmin().
		Source("transport", func() any { return trans.Stats() }).
		Source("core", func() any { return metrics.Snapshot() }).
		Source("obs", func() any { return reg.Snapshot() })
	addrHTTP, shutdown, err := admin.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addrHTTP + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Transport cluster.Stats `json:"transport"`
		Core      core.MetricsSnapshot
		Obs       obs.Snapshot
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if doc.Transport.Retries == 0 {
		t.Fatal("/metrics reports zero transport retries after the restart window")
	}
	if doc.Core.Commits != txns {
		t.Fatalf("/metrics core.Commits = %d, want %d", doc.Core.Commits, txns)
	}
	if n := doc.Obs.Sites[obs.SiteTxnLatency.String()].Count; n != txns {
		t.Fatalf("/metrics obs txn_latency count = %d, want %d", n, txns)
	}

	for _, path := range []string{"/healthz", "/debug/pprof/"} {
		r, err := http.Get("http://" + addrHTTP + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}
}
