package qrdtm

// Restart-time catch-up for durable replicas: after a replica restores its
// store from its data directory (WAL snapshot + log replay), CatchUp pulls
// the log tails of its peers to apply every decision and install it missed
// while down — bounded by the tail length, not the store size. A peer that
// compacted past this replica's cursor forces the conservative fallback: a
// full InstallNewer state transfer. See DESIGN.md §15.

import (
	"context"
	"fmt"

	"qrdtm/internal/cluster"
	"qrdtm/internal/proto"
	"qrdtm/internal/server"
)

// CatchUpStats reports what one CatchUp pass did. The qr-node admin surface
// exposes them as catchup_* gauges, which is how the crash-recovery test
// asserts "caught up from the log tail, no full resync".
type CatchUpStats struct {
	// TailPeers counts peers whose log tail was successfully consulted
	// (possibly applying zero records).
	TailPeers int
	// FullResyncs counts peers that had compacted past our cursor and were
	// drained with a full state transfer instead.
	FullResyncs int
	// SkippedPeers counts peers that were unreachable or not running
	// durably (no log to serve).
	SkippedPeers int
	// RecordsApplied counts tail records applied to the local store.
	RecordsApplied int
	// DroppedProtections counts objects whose pre-crash commit locks were
	// released after every peer had been consulted (prepared-but-undecided
	// transactions whose decision no reachable peer had ever seen).
	DroppedProtections int
}

// CatchUp brings a restored replica back up to date from its peers' logs.
// Call it after server.Replica.Restore and before the replica starts
// serving. Each peer is consulted from this replica's durable cursor for
// it; applied records are re-logged locally so progress survives another
// crash. Unreachable and non-durable peers are skipped (and counted) — the
// recovery quorum argument is the same as Cluster.Recover's: decides go to
// the union of prepared and current write quorums, and write quorums
// pairwise intersect, so the reachable peers' tails jointly contain every
// decision this replica acked a prepare for. The returned error is non-nil
// only for local failures (own-WAL append) or context cancellation.
func CatchUp(ctx context.Context, trans cluster.Transport, self proto.NodeID, peers []proto.NodeID, rep *server.Replica) (CatchUpStats, error) {
	var st CatchUpStats
	for _, peer := range peers {
		if peer == self {
			continue
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
		after := rep.Cursor(peer)
		for {
			resp, err := trans.Call(ctx, self, peer, proto.LogTailReq{After: after})
			if err != nil {
				st.SkippedPeers++
				break
			}
			lt, ok := resp.(proto.LogTailRep)
			if !ok || !lt.OK {
				st.SkippedPeers++
				break
			}
			if lt.Compacted {
				if err := fullResync(ctx, trans, self, peer, rep); err != nil {
					st.SkippedPeers++
				} else {
					st.FullResyncs++
				}
				break
			}
			for _, r := range lt.Records {
				applied, err := rep.ApplyLogRecord(r)
				if err != nil {
					return st, fmt.Errorf("catch-up from %v: %w", peer, err)
				}
				if applied {
					st.RecordsApplied++
				}
			}
			if lt.Next > after {
				after = lt.Next
				if err := rep.SetCursor(peer, after); err != nil {
					return st, fmt.Errorf("catch-up from %v: %w", peer, err)
				}
			}
			if !lt.More {
				st.TailPeers++
				break
			}
		}
	}
	st.DroppedProtections = rep.ResolveRestoredProtections()
	return st, ctx.Err()
}

// fullResync drains a peer's entire committed state (every slot) with
// InstallNewer semantics — the bounded tail was compacted away, so the
// transfer cost is the store size, exactly what the log tail normally
// avoids.
func fullResync(ctx context.Context, trans cluster.Transport, self, peer proto.NodeID, rep *server.Replica) error {
	slots := make([]int, proto.NumSlots)
	for i := range slots {
		slots[i] = i
	}
	resp, err := trans.Call(ctx, self, peer, proto.SlotDumpReq{Slots: slots})
	if err != nil {
		return err
	}
	sd, ok := resp.(proto.SlotDumpRep)
	if !ok {
		return fmt.Errorf("catch-up: unexpected %T from %v", resp, peer)
	}
	if len(sd.Copies) > 0 {
		if _, err := rep.ApplyLogRecord(proto.LogRecord{Kind: proto.LogKindInstall, Copies: sd.Copies}); err != nil {
			return err
		}
	}
	return nil
}
