// Pipelined-wire stress over real TCP under injected faults: many clients
// drive the full transaction engine through FaultTransport (drops,
// duplicate delivery, connection kills) on the multiplexed binary protocol,
// and the run must stay correct by two independent oracles — balance
// conservation resolved through a read quorum, and the trace-driven
// protocol checker over the merged span timeline.
package qrdtm_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qrdtm"
	"qrdtm/internal/cluster"
	"qrdtm/internal/core"
	"qrdtm/internal/obs"
	"qrdtm/internal/proto"
	"qrdtm/internal/quorum"
)

func TestTCPWireFaultStressLinearizable(t *testing.T) {
	const (
		// 13 nodes is the paper's full tree (height-2 ternary): quorum
		// intersection does real work instead of degenerating to "almost
		// everyone".
		nodes    = 13
		clients  = 6
		txnsPer  = 10
		accounts = 6
	)
	tc, _ := startTracedTCPCluster(t, nodes)
	var copies []proto.ObjectCopy
	for i := 0; i < accounts; i++ {
		copies = append(copies, proto.ObjectCopy{
			ID: proto.ObjectID(fmt.Sprintf("acct/%d", i)), Version: 1, Val: proto.Int64(100),
		})
	}
	tc.load(copies)

	ft := cluster.NewFaultTransport(tc.trans, 0xD15EA5E)
	ft.SetDropRate(0.01)
	ft.SetDuplicateRate(0.01)
	trans := cluster.NewRetryTransport(ft, cluster.RetryPolicy{
		MaxAttempts: 20,
		CallTimeout: 2 * time.Second,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})

	// Sever the multiplexed connections continuously while transactions are
	// in flight: every kill fails the pipelined calls riding them, and the
	// transport's stale-connection redial plus the retry layer must absorb
	// it all.
	killerDone := make(chan struct{})
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		for {
			select {
			case <-killerDone:
				return
			case <-time.After(50 * time.Millisecond):
				ft.KillConnections()
			}
		}
	}()

	// One shared IDGen: transaction ids must be unique cluster-wide — the
	// replicas key lock and version-guard state by TxnID, so two clients
	// minting from separate generators would collide and corrupt each other.
	ids := core.NewIDGen()
	clientRegs := make([]*obs.Registry, clients)
	auditors := make([]*obs.Auditor, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		// Default ring size on purpose: the streaming auditor must keep up
		// with the live span stream without an oversized buffer, and report
		// zero gap spans at the end.
		clientRegs[c] = obs.NewRegistry().WithSpans(obs.NewSpanBuffer(0))
		auditors[c] = obs.NewAuditor(clientRegs[c], obs.AuditorConfig{Interval: 20 * time.Millisecond})
		auditors[c].Start()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rt, err := core.NewRuntime(core.Config{
				Node:      proto.NodeID(c % nodes),
				Transport: trans,
				Quorums:   core.TreeQuorums{Tree: tc.tree},
				Mode:      core.Closed,
				IDs:       ids,
				Obs:       clientRegs[c],
			})
			if err != nil {
				t.Errorf("client %d runtime: %v", c, err)
				return
			}
			for i := 0; i < txnsPer; i++ {
				from := proto.ObjectID(fmt.Sprintf("acct/%d", (c*3+i)%accounts))
				to := proto.ObjectID(fmt.Sprintf("acct/%d", (c*5+i+1)%accounts))
				if from == to {
					continue
				}
				err := rt.Atomic(context.Background(), func(tx *core.Txn) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, proto.Int64(int64(fv.(proto.Int64))-1)); err != nil {
						return err
					}
					return tx.Write(to, proto.Int64(int64(tv.(proto.Int64))+1))
				})
				if err != nil {
					t.Errorf("client %d txn %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(killerDone)
	killerWG.Wait()
	if t.Failed() {
		return
	}
	if f := ft.Faults(); f.Dropped == 0 && f.Duplicated == 0 {
		t.Fatalf("fault injection never fired: %+v", f)
	}

	// Oracle 0: the always-on streaming auditors that watched each client's
	// span stream DURING the run (not post-hoc) saw zero invariant
	// violations and missed zero spans to ring overwrites.
	var audited uint64
	for c, a := range auditors {
		a.Stop()
		s := a.Stats()
		if s.Violations != 0 {
			t.Errorf("client %d streaming auditor: %d violations (last: %s)", c, s.Violations, s.LastViolation)
		}
		if s.GapSpans != 0 {
			t.Errorf("client %d streaming auditor: audit incomplete, %d spans lost to ring overwrites", c, s.GapSpans)
		}
		audited += s.Traces
	}
	if audited == 0 {
		t.Fatal("streaming auditors audited no traces")
	}

	// Oracle 1: conservation — the total balance, resolved through a read
	// quorum (highest version per object), must be exactly the initial sum.
	rq, err := tc.tree.ReadQuorum(quorum.AllAlive)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < accounts; i++ {
		var best proto.ObjectCopy
		for _, n := range rq {
			cp, ok := tc.replicas[n].Store().Get(proto.ObjectID(fmt.Sprintf("acct/%d", i)))
			if ok && cp.Version >= best.Version {
				best = cp
			}
		}
		total += int64(best.Val.(proto.Int64))
	}
	if total != accounts*100 {
		t.Fatalf("conservation violated under faults: total = %d, want %d", total, accounts*100)
	}

	// Oracle 2: the merged trace — every client's spans plus every replica's
	// serve spans, collected over the (un-faulted) wire — passes the
	// protocol checker: no stale read, no version regression, no
	// mis-routed abort slipped through the drop/dup/kill chaos.
	nodeIDs := make([]proto.NodeID, nodes)
	for i := range nodeIDs {
		nodeIDs[i] = proto.NodeID(i)
	}
	var clientSpans []proto.Span
	for _, reg := range clientRegs {
		clientSpans = append(clientSpans, reg.Spans().Spans()...)
	}
	merged := qrdtm.CollectTrace(context.Background(), tc.trans, 0, nodeIDs, clientSpans)
	check := qrdtm.CheckTrace(merged)
	if err := check.Err(); err != nil {
		t.Fatal(err)
	}
	if check.Traces == 0 {
		t.Fatalf("checker saw no complete traces: %+v", check)
	}
}
