package qrdtm_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qrdtm"
)

// shardCluster builds a sharded sim cluster preloaded with accts accounts of
// 100 units each.
func shardCluster(t *testing.T, nodes, shards, accts int, mode qrdtm.Mode, reg *qrdtm.Registry) (*qrdtm.Cluster, []qrdtm.ObjectID) {
	t.Helper()
	c, err := qrdtm.NewCluster(qrdtm.ClusterConfig{Nodes: nodes, Shards: shards, Mode: mode, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	kv := make(map[qrdtm.ObjectID]qrdtm.Value, accts)
	ids := make([]qrdtm.ObjectID, accts)
	for i := range ids {
		ids[i] = qrdtm.ObjectID(fmt.Sprintf("acct/%03d", i))
		kv[ids[i]] = qrdtm.Int64(100)
	}
	c.LoadKV(kv)
	return c, ids
}

// checkConservation asserts the committed account balances still sum to the
// loaded total.
func checkConservation(t *testing.T, c *qrdtm.Cluster, ids []qrdtm.ObjectID) {
	t.Helper()
	total := int64(0)
	for _, id := range ids {
		cp, err := c.ReadCommitted(context.Background(), id)
		if err != nil {
			t.Fatalf("read %s: %v", id, err)
		}
		if cp.Val == nil {
			t.Fatalf("account %s vanished", id)
		}
		total += int64(cp.Val.(qrdtm.Int64))
	}
	if want := int64(len(ids)) * 100; total != want {
		t.Fatalf("conservation violated: total = %d, want %d", total, want)
	}
}

// transfer moves 1 unit between two accounts inside a transaction.
func transfer(tx *qrdtm.Txn, from, to qrdtm.ObjectID) error {
	fv, err := tx.Read(from)
	if err != nil {
		return err
	}
	tv, err := tx.Read(to)
	if err != nil {
		return err
	}
	if err := tx.Write(from, qrdtm.Int64(fv.(qrdtm.Int64)-1)); err != nil {
		return err
	}
	return tx.Write(to, qrdtm.Int64(tv.(qrdtm.Int64)+1))
}

func TestShardedClusterBasics(t *testing.T) {
	c, _ := shardCluster(t, 13, 4, 8, qrdtm.Closed, nil)
	if !c.Sharded() {
		t.Fatal("cluster should be sharded")
	}
	m := c.ShardMap()
	if len(m.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(m.Shards))
	}
	// Every node belongs to exactly one shard.
	seen := make(map[qrdtm.NodeID]int)
	for _, s := range m.Shards {
		if len(s.Members) == 0 {
			t.Fatalf("shard %d has no members", s.ID)
		}
		for _, n := range s.Members {
			seen[n]++
		}
	}
	if len(seen) != 13 {
		t.Fatalf("members cover %d nodes, want 13", len(seen))
	}
	for n, k := range seen {
		if k != 1 {
			t.Fatalf("node %v in %d shards", n, k)
		}
	}
}

// TestShardedCommits drives concurrent transfers — intra- and cross-shard —
// over a sharded cluster and checks conservation.
func TestShardedCommits(t *testing.T) {
	for _, mode := range []qrdtm.Mode{qrdtm.Flat, qrdtm.Closed} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			c, ids := shardCluster(t, 13, 4, 16, mode, nil)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var wg sync.WaitGroup
			var commits atomic.Int64
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rt := c.Runtime(qrdtm.NodeID(w * 3))
					for i := 0; i < 25; i++ {
						from := ids[(w*25+i)%len(ids)]
						to := ids[(w*25+i*7+1)%len(ids)]
						if from == to {
							continue
						}
						err := rt.Atomic(ctx, func(tx *qrdtm.Txn) error {
							return transfer(tx, from, to)
						})
						if err != nil {
							t.Errorf("worker %d transfer %s->%s: %v", w, from, to, err)
							return
						}
						commits.Add(1)
					}
				}(w)
			}
			wg.Wait()
			if commits.Load() == 0 {
				t.Fatal("no transfers committed")
			}
			checkConservation(t, c, ids)
		})
	}
}

// TestShardedReadOnlyCrossShard checks that a read-only transaction spanning
// shards still commits (it must take the quorum prepare path, not the local
// commit shortcut, to stay serializable).
func TestShardedReadOnlyCrossShard(t *testing.T) {
	c, ids := shardCluster(t, 13, 4, 16, qrdtm.Closed, nil)
	ctx := context.Background()
	err := c.Runtime(0).Atomic(ctx, func(tx *qrdtm.Txn) error {
		sum := int64(0)
		for _, id := range ids {
			v, err := tx.Read(id)
			if err != nil {
				return err
			}
			sum += int64(v.(qrdtm.Int64))
		}
		if want := int64(len(ids)) * 100; sum != want {
			return fmt.Errorf("snapshot sum = %d, want %d", sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAddShardMigration reconfigures a live cluster — carving a new shard
// out of existing members' slots while transfer traffic flows — and checks
// that no money is lost, the map advanced two epochs, and (traced) the
// cross-shard atomicity and protocol invariants hold.
func TestAddShardMigration(t *testing.T) {
	reg := qrdtm.NewRegistry().WithSpans(qrdtm.NewSpanBuffer(1 << 15))
	c, ids := shardCluster(t, 13, 2, 16, qrdtm.Closed, reg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	before := c.ShardMap()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := c.Runtime(qrdtm.NodeID(w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := ids[(w*31+i)%len(ids)]
				to := ids[(w*31+i*3+1)%len(ids)]
				if from == to {
					continue
				}
				if err := rt.Atomic(ctx, func(tx *qrdtm.Txn) error {
					return transfer(tx, from, to)
				}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}

	// Let traffic build, then carve shard 2 out of nodes 10..12 (currently
	// split between shards 0 and 1) and hand it a third of the slots.
	time.Sleep(50 * time.Millisecond)
	var slots []int
	for s := range before.Slots {
		if s%3 == 0 {
			slots = append(slots, s)
		}
	}
	newID := qrdtm.ShardID(len(before.Shards))
	if err := c.AddShard(ctx, newID, []qrdtm.NodeID{10, 11, 12}, slots); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	after := c.ShardMap()
	if after.Epoch != before.Epoch+2 {
		t.Fatalf("epoch = %d, want %d", after.Epoch, before.Epoch+2)
	}
	if len(after.Shards) != len(before.Shards)+1 {
		t.Fatalf("shards = %d, want %d", len(after.Shards), len(before.Shards)+1)
	}
	for _, s := range slots {
		if after.Slots[s].Owner != newID {
			t.Fatalf("slot %d owner = %d, want %d", s, after.Slots[s].Owner, newID)
		}
	}
	if commits.Load() == 0 {
		t.Fatal("no transfers committed across the migration")
	}
	checkConservation(t, c, ids)

	// The traced run must satisfy every protocol invariant, including
	// cross-shard 2PC atomicity, across the live migration.
	spans := qrdtm.MergeSpans(reg.Spans().Spans())
	res := qrdtm.CheckTrace(spans)
	if res.Traces == 0 {
		t.Fatal("no complete traces collected")
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}
